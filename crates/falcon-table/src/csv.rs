//! Minimal CSV reader/writer (RFC-4180-ish: quoted fields, embedded commas,
//! doubled quotes, embedded newlines). Enough to persist/load the synthetic
//! datasets without an external dependency.
//!
//! The reader is a streaming, cross-line state machine: it scans the
//! buffered input byte-at-a-time, accumulates each record's unescaped
//! field bytes into one reused buffer, and feeds fields straight into
//! [`ColumnBuilder`]s — no intermediate `String` per field, no `Vec` per
//! row. Quoted fields may span physical lines, fixing the round-trip bug
//! where [`write_table`] quoted embedded `\n` but the old line-split
//! reader corrupted it on re-read.

use crate::column::ColumnBuilder;
use crate::schema::{AttrType, Schema};
use crate::table::{Table, TableRepr};
use crate::value::Value;
use std::io::{self, BufRead, Write};

/// Parse one CSV record from a line (no embedded newlines). Kept for
/// call sites that already have a physical line in hand; the table
/// reader uses the streaming [`RecordReader`] instead.
pub fn parse_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        cur.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                _ => cur.push(c),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut cur)),
                _ => cur.push(c),
            }
        }
    }
    fields.push(cur);
    fields
}

/// Escape a field for CSV output.
pub fn escape(field: &str) -> String {
    if field.contains([',', '"', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

/// Parser state carried across buffer refills (and physical lines).
#[derive(Clone, Copy, PartialEq)]
enum ScanState {
    /// Outside quotes.
    Unquoted,
    /// Inside a quoted section.
    Quoted,
    /// Inside quotes, just saw a `"` — the next byte decides whether it
    /// was a doubled quote (literal `"`) or the closing quote.
    QuoteSeen,
}

/// One decoded record: all unescaped field bytes in a single buffer,
/// with per-field end offsets. Field `i` spans `ends[i-1]..ends[i]`
/// (`ends[-1]` read as 0). Reused across records so steady-state record
/// decoding is allocation-free.
///
/// The buffer holds raw bytes while a record is being assembled (bulk
/// copies from the input chunk may end mid-way through a multi-byte
/// character at a chunk boundary); [`RecordReader::next_record`]
/// validates the completed record once, so [`Record::field`] always sees
/// UTF-8 and its fallback never fires. Field boundaries sit after ASCII
/// separators, hence always on character boundaries.
#[derive(Default)]
struct Record {
    buf: Vec<u8>,
    ends: Vec<usize>,
}

impl Record {
    fn clear(&mut self) {
        self.buf.clear();
        self.ends.clear();
    }

    fn arity(&self) -> usize {
        self.ends.len()
    }

    fn field(&self, i: usize) -> &str {
        let start = if i == 0 { 0 } else { self.ends[i - 1] };
        std::str::from_utf8(&self.buf[start..self.ends[i]]).unwrap_or("")
    }

    fn fields(&self) -> impl Iterator<Item = &str> {
        (0..self.arity()).map(|i| self.field(i))
    }

    /// Close the final field and validate the whole record's bytes.
    fn finish(&mut self) -> io::Result<bool> {
        self.ends.push(self.buf.len());
        std::str::from_utf8(&self.buf).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("invalid utf-8 in csv: {e}"),
            )
        })?;
        Ok(true)
    }
}

/// Streaming record scanner over buffered input.
struct RecordReader<R: BufRead> {
    inner: R,
}

impl<R: BufRead> RecordReader<R> {
    fn new(inner: R) -> Self {
        RecordReader { inner }
    }

    /// Decode the next record into `rec`, skipping blank lines. Returns
    /// `false` at end of input. Newline handling matches the old
    /// line-based reader exactly: `\r\n` and `\n` terminate records
    /// (outside quotes), a lone `\r` is field content, and inside quotes
    /// every byte is literal.
    ///
    /// The scan works on raw bytes: every structural character (`"`,
    /// `,`, `\r`, `\n`) is ASCII, and no UTF-8 continuation byte can
    /// alias one, so runs of plain content between structural bytes are
    /// bulk-copied. Validation happens once per completed record (see
    /// [`Record::finish`]), which also keeps multi-byte characters split
    /// across buffer refills intact.
    fn next_record(&mut self, rec: &mut Record) -> io::Result<bool> {
        rec.clear();
        let mut state = ScanState::Unquoted;
        // Consumed at least one byte for this record (terminator included).
        let mut consumed_any = false;
        // Saw a quote or comma — a record of just `""` is one empty
        // field, not a blank line.
        let mut structure = false;
        // The previous byte was an unquoted `\r` (stripped before `\n`).
        let mut cr_pending = false;

        loop {
            let bytes = self.inner.fill_buf()?;
            if bytes.is_empty() {
                // End of input: emit the trailing record if it has any
                // content (files need not end with a newline). A pending
                // `\r` is content here — `BufRead::lines` only strips it
                // immediately before `\n`. An unterminated quote ends
                // its field at EOF.
                if cr_pending {
                    rec.buf.push(b'\r');
                }
                if !consumed_any || (rec.buf.is_empty() && rec.ends.is_empty() && !structure) {
                    return Ok(false);
                }
                return rec.finish();
            }
            let mut pos = 0;
            while pos < bytes.len() {
                let b = bytes[pos];
                if cr_pending && !(state == ScanState::Unquoted && b == b'\n') {
                    // The `\r` was not part of a `\r\n` terminator after
                    // all — keep it as field content.
                    rec.buf.push(b'\r');
                    cr_pending = false;
                }
                match state {
                    ScanState::Quoted => {
                        // Bulk-copy literal bytes up to the next quote.
                        let run = bytes[pos..]
                            .iter()
                            .position(|&x| x == b'"')
                            .unwrap_or(bytes.len() - pos);
                        rec.buf.extend_from_slice(&bytes[pos..pos + run]);
                        pos += run;
                        consumed_any = true;
                        if pos < bytes.len() {
                            state = ScanState::QuoteSeen;
                            pos += 1;
                        }
                    }
                    ScanState::QuoteSeen => {
                        consumed_any = true;
                        match b {
                            b'"' => {
                                rec.buf.push(b'"');
                                state = ScanState::Quoted;
                                pos += 1;
                            }
                            b',' => {
                                state = ScanState::Unquoted;
                                rec.ends.push(rec.buf.len());
                                pos += 1;
                            }
                            b'\n' => {
                                self.inner.consume(pos + 1);
                                return rec.finish();
                            }
                            b'\r' => {
                                state = ScanState::Unquoted;
                                cr_pending = true;
                                pos += 1;
                            }
                            // Plain byte after a closing quote: fall back
                            // to unquoted content without consuming, so
                            // the bulk arm below copies the run.
                            _ => state = ScanState::Unquoted,
                        }
                    }
                    ScanState::Unquoted => match b {
                        b'"' => {
                            state = ScanState::Quoted;
                            structure = true;
                            consumed_any = true;
                            pos += 1;
                        }
                        b',' => {
                            rec.ends.push(rec.buf.len());
                            structure = true;
                            consumed_any = true;
                            pos += 1;
                        }
                        b'\r' => {
                            cr_pending = true;
                            consumed_any = true;
                            pos += 1;
                        }
                        b'\n' => {
                            cr_pending = false;
                            pos += 1;
                            if rec.buf.is_empty() && rec.ends.is_empty() && !structure {
                                // Blank line: skip and keep scanning.
                                consumed_any = false;
                                continue;
                            }
                            self.inner.consume(pos);
                            return rec.finish();
                        }
                        _ => {
                            // Bulk-copy the run of plain field bytes.
                            let run = bytes[pos..]
                                .iter()
                                .position(|&x| matches!(x, b'"' | b',' | b'\r' | b'\n'))
                                .unwrap_or(bytes.len() - pos);
                            rec.buf.extend_from_slice(&bytes[pos..pos + run]);
                            pos += run;
                            consumed_any = true;
                        }
                    },
                }
            }
            let used = bytes.len();
            self.inner.consume(used);
        }
    }
}

/// Read a table from CSV with a header row, in the default
/// representation. All columns load as `Str`; numeric-looking fields are
/// parsed to numbers via [`Value::parse`].
pub fn read_table(name: &str, reader: impl BufRead) -> io::Result<Table> {
    read_table_with(name, reader, TableRepr::default_repr())
}

/// Read a table from CSV with a header row, in an explicit
/// representation. The columnar path streams fields straight into
/// column builders; the legacy path materializes row vectors.
pub fn read_table_with(name: &str, reader: impl BufRead, repr: TableRepr) -> io::Result<Table> {
    let mut rr = RecordReader::new(reader);
    let mut rec = Record::default();
    if !rr.next_record(&mut rec)? {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "empty csv"));
    }
    let schema = Schema::new(rec.fields().map(|n| (n.to_string(), AttrType::Str)));
    let arity = schema.arity();

    let arity_err = |got: usize| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("row arity {got} != header {arity}"),
        )
    };

    match repr {
        TableRepr::Columnar => {
            let mut builders: Vec<ColumnBuilder> =
                (0..arity).map(|_| ColumnBuilder::new()).collect();
            let mut n_rows = 0usize;
            while rr.next_record(&mut rec)? {
                if rec.arity() != arity {
                    return Err(arity_err(rec.arity()));
                }
                for (b, field) in builders.iter_mut().zip(rec.fields()) {
                    b.push_raw(field);
                }
                n_rows += 1;
            }
            Ok(Table::from_columns(
                name,
                schema,
                builders.into_iter().map(ColumnBuilder::finish).collect(),
                n_rows,
            ))
        }
        TableRepr::Legacy => {
            let mut rows: Vec<Vec<Value>> = Vec::new();
            while rr.next_record(&mut rec)? {
                if rec.arity() != arity {
                    return Err(arity_err(rec.arity()));
                }
                rows.push(rec.fields().map(Value::parse).collect());
            }
            Table::try_new_with(name, schema, rows, TableRepr::Legacy)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
        }
    }
}

/// Write a table as CSV with a header row.
pub fn write_table(table: &Table, mut w: impl Write) -> io::Result<()> {
    let mut line = String::new();
    for (i, name) in table.schema().names().enumerate() {
        if i > 0 {
            line.push(',');
        }
        push_escaped(&mut line, name);
    }
    writeln!(w, "{line}")?;
    let arity = table.schema().arity();
    let mut scratch = String::new();
    for id in 0..table.len() {
        line.clear();
        for idx in 0..arity {
            if idx > 0 {
                line.push(',');
            }
            scratch.clear();
            if let Some(v) = table.value_ref(id as u32, idx) {
                v.render_into(&mut scratch);
            }
            push_escaped(&mut line, &scratch);
        }
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Append `field` to `out`, quoting and doubling quotes when needed
/// (same output as [`escape`], without the per-field allocation).
fn push_escaped(out: &mut String, field: &str) {
    if field.contains([',', '"', '\n']) {
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_both(csv: &str) -> (Table, Table) {
        let col = read_table_with("t", csv.as_bytes(), TableRepr::Columnar).unwrap();
        let leg = read_table_with("t", csv.as_bytes(), TableRepr::Legacy).unwrap();
        assert_eq!(col.rows(), leg.rows(), "representations disagree");
        (col, leg)
    }

    #[test]
    fn parse_handles_quotes() {
        assert_eq!(parse_record("a,b,c"), vec!["a", "b", "c"]);
        assert_eq!(parse_record(r#""a,b",c"#), vec!["a,b", "c"]);
        assert_eq!(parse_record(r#""say ""hi""",x"#), vec![r#"say "hi""#, "x"]);
        assert_eq!(parse_record(""), vec![""]);
        assert_eq!(parse_record("a,,c"), vec!["a", "", "c"]);
    }

    #[test]
    fn roundtrip() {
        let csv = "title,price\n\"laptop, 15in\",999.5\nmouse,25\n";
        let (t, _) = read_both(csv);
        assert_eq!(t.len(), 2);
        assert_eq!(t.value_of(0, "title"), Some(&Value::str("laptop, 15in")));
        assert_eq!(t.value_of(1, "price"), Some(&Value::Num(25.0)));
        let mut out = Vec::new();
        write_table(&t, &mut out).unwrap();
        let t2 = read_table("t2", out.as_slice()).unwrap();
        assert_eq!(t2.rows(), t.rows());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let csv = "a,b\n1\n";
        assert!(read_table_with("t", csv.as_bytes(), TableRepr::Columnar).is_err());
        assert!(read_table_with("t", csv.as_bytes(), TableRepr::Legacy).is_err());
    }

    #[test]
    fn escape_roundtrips() {
        for s in ["plain", "with,comma", "with \"quote\"", ""] {
            let line = escape(s);
            assert_eq!(parse_record(&line), vec![s.to_string()]);
        }
    }

    #[test]
    fn embedded_newline_roundtrips() {
        // Regression: `write_table` quotes embedded newlines; the old
        // line-split reader corrupted them on re-read.
        let schema = Schema::new([("notes", AttrType::Str), ("n", AttrType::Num)]);
        let t = Table::new(
            "multi",
            schema,
            vec![
                vec![Value::str("line one\nline two"), Value::num(1.0)],
                vec![Value::str("a \"quoted\"\ncomma, too"), Value::num(2.0)],
                vec![Value::str("plain"), Value::Null],
            ],
        );
        let mut out = Vec::new();
        write_table(&t, &mut out).unwrap();
        let csv = String::from_utf8(out).unwrap();
        let (back, _) = read_both(&csv);
        assert_eq!(back.rows(), t.rows());
        assert_eq!(
            back.value_of(0, "notes"),
            Some(&Value::str("line one\nline two"))
        );
    }

    #[test]
    fn crlf_and_blank_lines_match_line_reader() {
        // \r\n terminators are stripped like BufRead::lines does; blank
        // lines (including \r\n-only) are skipped; a lone \r mid-field
        // is content.
        let csv = "a,b\r\n1,x\r\n\r\n\n2,has\rcr\r\n";
        let (t, _) = read_both(csv);
        assert_eq!(t.len(), 2);
        assert_eq!(t.value_of(1, "b"), Some(&Value::str("has\rcr")));
    }

    #[test]
    fn quoted_empty_record_is_one_empty_field() {
        // A record of just `""` is a 1-field row (empty ⇒ Null), not a
        // blank line — mirrors parse_record("\"\"").
        let csv = "a\n\"\"\nx\n";
        let (t, _) = read_both(csv);
        assert_eq!(t.len(), 2);
        assert_eq!(t.value_of(0, "a"), Some(&Value::Null));
        assert_eq!(t.value_of(1, "a"), Some(&Value::str("x")));
    }

    #[test]
    fn missing_trailing_newline_keeps_last_row() {
        let (t, _) = read_both("a,b\n1,2\n3,4");
        assert_eq!(t.len(), 2);
        assert_eq!(t.value_of(1, "b"), Some(&Value::Num(4.0)));
    }

    #[test]
    fn streaming_reader_agrees_with_parse_record_on_single_lines() {
        // The state machine must match parse_record field-for-field on
        // every well-formed single-line record. (Unbalanced quotes are
        // the one intentional divergence: the streaming reader lets a
        // quoted field continue across the newline, which is the whole
        // point of the fix.)
        for line in [
            "a,b,c",
            r#""a,b",c"#,
            r#""say ""hi""",x"#,
            "a,,c",
            r#""mid"quote,x"#,
            "ünï,cödé",
        ] {
            let want = parse_record(line);
            let input = format!("{line}\n");
            let mut rr = RecordReader::new(input.as_bytes());
            let mut rec = Record::default();
            assert!(rr.next_record(&mut rec).unwrap());
            let got: Vec<String> = rec.fields().map(str::to_string).collect();
            assert_eq!(got, want, "line {line:?}");
            assert!(!rr.next_record(&mut rec).unwrap());
        }
    }

    #[test]
    fn invalid_utf8_is_rejected() {
        let bytes: &[u8] = b"a\n\xffbad\n";
        assert!(read_table("t", bytes).is_err());
    }
}
