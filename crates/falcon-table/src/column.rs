//! Struct-of-arrays columnar storage.
//!
//! A [`Column`] holds one attribute of a table in four dense arrays:
//!
//! * `valid` — one bit per row, 0 = `Null`;
//! * `numeric` — one bit per row, 1 = the cell is a number;
//! * `nums` — one `f64` per row (unused slots hold `0.0`), so numeric
//!   scans are a straight sweep over a dense float vector;
//! * `bytes` + `offsets` — a single UTF-8 arena holding every string
//!   cell back to back, with `u32` offsets (`len + 1` entries); string
//!   cells borrow directly out of the arena, one allocation per column
//!   instead of one per cell.
//!
//! Cells are read through [`ValueRef`], a borrowing, copyable view with
//! exactly the same semantics as [`Value`] (`as_num` parses numeric
//! strings, `render` formats numbers identically), so column-at-a-time
//! operators produce bit-identical results to the row-at-a-time path.

use crate::value::{render_num_into, Value};

/// A packed bit vector, one bit per row.
#[derive(Debug, Clone, Default)]
pub struct Bitmap {
    bits: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap with room for `n` bits.
    pub fn with_capacity(n: usize) -> Self {
        Bitmap {
            bits: Vec::with_capacity(n.div_ceil(64)),
            len: 0,
        }
    }

    /// Append one bit.
    pub fn push(&mut self, bit: bool) {
        let (word, shift) = (self.len / 64, self.len % 64);
        if shift == 0 {
            self.bits.push(0);
        }
        if bit {
            self.bits[word] |= 1u64 << shift;
        }
        self.len += 1;
    }

    /// Bit at `i` (false when out of range).
    pub fn get(&self, i: usize) -> bool {
        i < self.len && (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no bits have been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The first `n` bits as a new bitmap.
    fn head(&self, n: usize) -> Bitmap {
        let n = n.min(self.len);
        let mut bits = self.bits[..n.div_ceil(64)].to_vec();
        if let Some(last) = bits.last_mut() {
            let rem = n % 64;
            if rem != 0 {
                *last &= (1u64 << rem) - 1;
            }
        }
        Bitmap { bits, len: n }
    }
}

/// A borrowed view of one cell. Copyable; string cells borrow from the
/// column arena (or from a [`Value`] via [`Value::as_ref`]).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum ValueRef<'a> {
    /// Missing value.
    #[default]
    Null,
    /// Free-form string.
    Str(&'a str),
    /// Numeric value.
    Num(f64),
}

impl<'a> ValueRef<'a> {
    /// True iff the value is missing.
    pub fn is_null(&self) -> bool {
        matches!(self, ValueRef::Null)
    }

    /// View as a string slice, if present (numbers are not stringified).
    pub fn as_str(&self) -> Option<&'a str> {
        match self {
            ValueRef::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view: numbers directly, strings via parsing. Matches
    /// [`Value::as_num`] exactly.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            ValueRef::Num(x) => Some(*x),
            ValueRef::Str(s) => s.trim().parse().ok(),
            ValueRef::Null => None,
        }
    }

    /// Render to text; identical output to [`Value::render`].
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    /// Append the rendered text to `out` (allocation-free for reused
    /// scratch buffers).
    pub fn render_into(&self, out: &mut String) {
        match self {
            ValueRef::Null => {}
            ValueRef::Str(s) => out.push_str(s),
            ValueRef::Num(x) => render_num_into(*x, out),
        }
    }

    /// Reconstruct an owned [`Value`] with identical contents. `Str` and
    /// `Num` payloads are preserved verbatim (no null-coercion of
    /// whitespace strings or NaN), so round-tripping a `Value` through a
    /// column is lossless.
    pub fn to_value(&self) -> Value {
        match self {
            ValueRef::Null => Value::Null,
            ValueRef::Str(s) => Value::Str((*s).to_string()),
            ValueRef::Num(x) => Value::Num(*x),
        }
    }
}

impl<'a> From<&'a Value> for ValueRef<'a> {
    fn from(v: &'a Value) -> Self {
        match v {
            Value::Null => ValueRef::Null,
            Value::Str(s) => ValueRef::Str(s),
            Value::Num(x) => ValueRef::Num(*x),
        }
    }
}

/// One attribute of a table in struct-of-arrays form. Built with
/// [`ColumnBuilder`]; immutable afterwards.
#[derive(Debug, Clone)]
pub struct Column {
    valid: Bitmap,
    numeric: Bitmap,
    /// `len + 1` entries; non-string cells occupy zero-length spans.
    offsets: Vec<u32>,
    /// UTF-8 arena for string cells.
    bytes: Vec<u8>,
    /// One slot per row; non-numeric slots hold `0.0`.
    nums: Vec<f64>,
}

impl Column {
    /// Number of cells.
    pub fn len(&self) -> usize {
        self.valid.len()
    }

    /// True iff the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.valid.is_empty()
    }

    /// Cell at `i`, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<ValueRef<'_>> {
        if i >= self.len() {
            return None;
        }
        Some(if !self.valid.get(i) {
            ValueRef::Null
        } else if self.numeric.get(i) {
            ValueRef::Num(self.nums[i])
        } else {
            ValueRef::Str(self.str_at(i))
        })
    }

    fn str_at(&self, i: usize) -> &str {
        let span = &self.bytes[self.offsets[i] as usize..self.offsets[i + 1] as usize];
        // The arena only ever receives whole `&str` values, so every span
        // is valid UTF-8 and the fallback is unreachable.
        std::str::from_utf8(span).unwrap_or("")
    }

    /// Visit every cell in row order.
    pub fn for_each(&self, mut f: impl FnMut(usize, ValueRef<'_>)) {
        for i in 0..self.len() {
            let v = if !self.valid.get(i) {
                ValueRef::Null
            } else if self.numeric.get(i) {
                ValueRef::Num(self.nums[i])
            } else {
                ValueRef::Str(self.str_at(i))
            };
            f(i, v);
        }
    }

    /// The first `n` cells as a new column (arena prefix is shared by
    /// construction: string spans are append-only).
    pub fn head(&self, n: usize) -> Column {
        let n = n.min(self.len());
        Column {
            valid: self.valid.head(n),
            numeric: self.numeric.head(n),
            offsets: self.offsets[..n + 1].to_vec(),
            bytes: self.bytes[..self.offsets[n] as usize].to_vec(),
            nums: self.nums[..n].to_vec(),
        }
    }

    /// Approximate heap footprint in bytes.
    pub fn estimated_bytes(&self) -> usize {
        self.bytes.len()
            + self.offsets.len() * std::mem::size_of::<u32>()
            + self.nums.len() * std::mem::size_of::<f64>()
            + (self.valid.bits.len() + self.numeric.bits.len()) * std::mem::size_of::<u64>()
    }
}

/// Incremental [`Column`] construction: cells are appended once, string
/// bytes go straight into the arena.
#[derive(Debug)]
pub struct ColumnBuilder {
    valid: Bitmap,
    numeric: Bitmap,
    offsets: Vec<u32>,
    bytes: Vec<u8>,
    nums: Vec<f64>,
}

impl Default for ColumnBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl ColumnBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        ColumnBuilder {
            valid: Bitmap::default(),
            numeric: Bitmap::default(),
            offsets: vec![0],
            bytes: Vec::new(),
            nums: Vec::new(),
        }
    }

    /// An empty builder with row/arena capacity hints.
    pub fn with_capacity(rows: usize, arena_bytes: usize) -> Self {
        let mut b = ColumnBuilder {
            valid: Bitmap::with_capacity(rows),
            numeric: Bitmap::with_capacity(rows),
            offsets: Vec::with_capacity(rows + 1),
            bytes: Vec::with_capacity(arena_bytes),
            nums: Vec::with_capacity(rows),
        };
        b.offsets.push(0);
        b
    }

    /// Number of cells pushed so far.
    pub fn len(&self) -> usize {
        self.valid.len()
    }

    /// True iff no cells have been pushed.
    pub fn is_empty(&self) -> bool {
        self.valid.is_empty()
    }

    fn close_cell(&mut self) {
        // Column arenas are capped at u32 offsets (4 GiB of string bytes
        // per column) — far beyond the in-memory tables this engine
        // targets, but checked rather than silently wrapped.
        assert!(
            u32::try_from(self.bytes.len()).is_ok(),
            "column arena exceeds u32 offset range"
        );
        self.offsets.push(self.bytes.len() as u32);
    }

    /// Append a missing cell.
    pub fn push_null(&mut self) {
        self.valid.push(false);
        self.numeric.push(false);
        self.nums.push(0.0);
        self.close_cell();
    }

    /// Append a string cell (stored verbatim, even if whitespace-only).
    pub fn push_str(&mut self, s: &str) {
        self.valid.push(true);
        self.numeric.push(false);
        self.nums.push(0.0);
        self.bytes.extend_from_slice(s.as_bytes());
        self.close_cell();
    }

    /// Append a numeric cell (stored verbatim, even NaN).
    pub fn push_num(&mut self, x: f64) {
        self.valid.push(true);
        self.numeric.push(true);
        self.nums.push(x);
        self.close_cell();
    }

    /// Append an owned [`Value`] without altering its payload.
    pub fn push_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.push_null(),
            Value::Str(s) => self.push_str(s),
            Value::Num(x) => self.push_num(*x),
        }
    }

    /// Append a raw text field with [`Value::parse`] semantics — trim,
    /// empty ⇒ null, finite number ⇒ num, else str — without
    /// materializing an intermediate `Value` (string bytes are copied
    /// once, straight into the arena).
    pub fn push_raw(&mut self, raw: &str) {
        let t = raw.trim();
        if t.is_empty() {
            return self.push_null();
        }
        match t.parse::<f64>() {
            Ok(x) if x.is_finite() => self.push_num(x),
            _ => self.push_str(t),
        }
    }

    /// Finish building.
    pub fn finish(self) -> Column {
        Column {
            valid: self.valid,
            numeric: self.numeric,
            offsets: self.offsets,
            bytes: self.bytes,
            nums: self.nums,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitmap_push_get() {
        let mut b = Bitmap::default();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
        assert!(!b.get(500));
        assert_eq!(b.count_ones(), (0..130).filter(|i| i % 3 == 0).count());
    }

    #[test]
    fn bitmap_head_masks_tail() {
        let mut b = Bitmap::default();
        for _ in 0..70 {
            b.push(true);
        }
        let h = b.head(65);
        assert_eq!(h.len(), 65);
        assert_eq!(h.count_ones(), 65);
        assert!(!h.get(65));
    }

    #[test]
    fn column_roundtrips_values() {
        let vals = [
            Value::Null,
            Value::Str("hello".into()),
            Value::Num(3.25),
            Value::Str("  ".into()), // whitespace-only must survive
            Value::Num(f64::NAN),    // raw NaN must survive
            Value::Str("naïve, ünïcode".into()),
            Value::Num(-0.0),
        ];
        let mut b = ColumnBuilder::new();
        for v in &vals {
            b.push_value(v);
        }
        let col = b.finish();
        assert_eq!(col.len(), vals.len());
        for (i, v) in vals.iter().enumerate() {
            let got = col.get(i).unwrap().to_value();
            // NaN != NaN under PartialEq; compare bits for numerics.
            match (&got, v) {
                (Value::Num(a), Value::Num(b)) => {
                    assert_eq!(a.to_bits(), b.to_bits(), "cell {i}")
                }
                _ => assert_eq!(&got, v, "cell {i}"),
            }
        }
        assert_eq!(col.get(vals.len()), None);
    }

    #[test]
    fn push_raw_matches_value_parse() {
        let raws = [
            "12.5", "  42 ", "abc", "", "   ", "inf", "NaN", "1e300", "1e400",
        ];
        let mut b = ColumnBuilder::new();
        for r in raws {
            b.push_raw(r);
        }
        let col = b.finish();
        for (i, r) in raws.iter().enumerate() {
            assert_eq!(col.get(i).unwrap().to_value(), Value::parse(r), "raw {r:?}");
        }
    }

    #[test]
    fn value_ref_semantics_match_value() {
        for v in [
            Value::Null,
            Value::Str(" 3.5 ".into()),
            Value::Str("abc".into()),
            Value::Num(3.0),
            Value::Num(3.25),
        ] {
            let r = v.as_value_ref();
            assert_eq!(r.is_null(), v.is_null());
            assert_eq!(r.as_str(), v.as_str());
            assert_eq!(r.as_num(), v.as_num());
            assert_eq!(r.render(), v.render());
        }
    }

    #[test]
    fn column_head_is_prefix() {
        let mut b = ColumnBuilder::new();
        b.push_str("one");
        b.push_num(2.0);
        b.push_null();
        b.push_str("four");
        let col = b.finish();
        let h = col.head(2);
        assert_eq!(h.len(), 2);
        assert_eq!(h.get(0), Some(ValueRef::Str("one")));
        assert_eq!(h.get(1), Some(ValueRef::Num(2.0)));
        assert_eq!(h.get(2), None);
    }
}
