//! Tuples and tables.

use crate::schema::Schema;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Tuple identifier, unique within its table.
pub type TupleId = u32;

/// A row: its id plus one value per schema attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tuple {
    /// Identifier, unique within the owning table.
    pub id: TupleId,
    /// Values, aligned with the table schema.
    pub values: Vec<Value>,
}

impl Tuple {
    /// Value at an attribute index.
    pub fn value(&self, idx: usize) -> &Value {
        &self.values[idx]
    }
}

/// An in-memory table: a schema plus rows. Cheap to clone (rows behind an
/// `Arc`) so the dataflow engine can hand partitions to worker threads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Arc<Vec<Tuple>>,
}

impl Table {
    /// Build a table from rows of values. Ids are assigned positionally.
    ///
    /// # Panics
    /// Panics if any row's arity differs from the schema's.
    pub fn new(
        name: impl Into<String>,
        schema: Schema,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Self {
        let rows: Vec<Tuple> = rows
            .into_iter()
            .enumerate()
            .map(|(i, values)| {
                assert_eq!(values.len(), schema.arity(), "row {i} arity mismatch");
                Tuple {
                    id: i as TupleId,
                    values,
                }
            })
            .collect();
        Self {
            name: name.into(),
            schema,
            rows: Arc::new(rows),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// All rows.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Row by id (ids are positional).
    pub fn get(&self, id: TupleId) -> Option<&Tuple> {
        self.rows.get(id as usize)
    }

    /// Value of `attr` in row `id`, if both exist.
    pub fn value_of(&self, id: TupleId, attr: &str) -> Option<&Value> {
        let idx = self.schema.index_of(attr)?;
        self.get(id).map(|t| t.value(idx))
    }

    /// A new table containing the first `n` rows (re-identified from 0).
    /// Used by the table-size sensitivity experiments (Figure 10).
    pub fn head(&self, n: usize) -> Table {
        Table::new(
            format!("{}[..{n}]", self.name),
            self.schema.clone(),
            self.rows.iter().take(n).map(|t| t.values.clone()),
        )
    }

    /// Split row ids into `k` contiguous chunks for parallel scans.
    pub fn splits(&self, k: usize) -> Vec<std::ops::Range<usize>> {
        let n = self.rows.len();
        let k = k.max(1);
        let chunk = n.div_ceil(k).max(1);
        (0..n)
            .step_by(chunk)
            .map(|s| s..(s + chunk).min(n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;

    fn t() -> Table {
        let schema = Schema::new([("name", AttrType::Str), ("age", AttrType::Num)]);
        Table::new(
            "people",
            schema,
            vec![
                vec![Value::str("ann"), Value::num(30.0)],
                vec![Value::str("bob"), Value::num(41.0)],
                vec![Value::Null, Value::num(12.0)],
            ],
        )
    }

    #[test]
    fn ids_positional() {
        let t = t();
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(1).unwrap().values[0], Value::str("bob"));
        assert_eq!(t.get(9), None);
    }

    #[test]
    fn value_of_by_name() {
        let t = t();
        assert_eq!(t.value_of(0, "age"), Some(&Value::Num(30.0)));
        assert_eq!(t.value_of(0, "nope"), None);
    }

    #[test]
    fn head_reidentifies() {
        let h = t().head(2);
        assert_eq!(h.len(), 2);
        assert_eq!(h.get(0).unwrap().id, 0);
    }

    #[test]
    fn splits_cover_all_rows() {
        let t = t();
        for k in 1..6 {
            let splits = t.splits(k);
            let total: usize = splits.iter().map(|r| r.len()).sum();
            assert_eq!(total, t.len(), "k={k}");
        }
        assert_eq!(t.head(0).splits(4).len(), 0);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let schema = Schema::new([("a", AttrType::Str)]);
        Table::new("bad", schema, vec![vec![Value::Null, Value::Null]]);
    }
}
