//! Tuples and tables.
//!
//! A [`Table`] stores its cells in one of two representations:
//!
//! * [`TableRepr::Columnar`] (the default) — struct-of-arrays
//!   [`Column`]s, one per attribute: contiguous byte arena + offsets for
//!   strings, a dense `f64` vector for numbers, validity bitmaps for
//!   nulls. Column-at-a-time operators scan these directly via
//!   [`Table::value_ref`] / [`Table::for_each_value`] /
//!   [`Table::for_each_rendered`].
//! * [`TableRepr::Legacy`] — the original row store (`Vec<Tuple>` of
//!   `Vec<Value>`), kept as a differential-testing baseline exactly like
//!   `FvMode::Legacy` in the feature layer.
//!
//! The row-view accessors ([`Table::rows`], [`Table::get`],
//! [`Table::value_of`]) work on both: a columnar table materializes its
//! row view lazily, at most once, so call sites migrate incrementally.
//! Both representations are bit-identical through every operator; set
//! `FALCON_TABLE_REPR=legacy` to flip the process-wide default.

use crate::column::{Column, ColumnBuilder, ValueRef};
use crate::schema::Schema;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Tuple identifier, unique within its table.
pub type TupleId = u32;

/// A row: its id plus one value per schema attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tuple {
    /// Identifier, unique within the owning table.
    pub id: TupleId,
    /// Values, aligned with the table schema.
    pub values: Vec<Value>,
}

impl Tuple {
    /// Value at an attribute index.
    pub fn value(&self, idx: usize) -> &Value {
        &self.values[idx]
    }
}

/// Which physical representation a [`Table`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TableRepr {
    /// Struct-of-arrays columns (the default).
    #[default]
    Columnar,
    /// Row-oriented `Vec<Tuple>`, kept for differential testing.
    Legacy,
}

impl TableRepr {
    /// The process-wide default representation: columnar, unless the
    /// `FALCON_TABLE_REPR` environment variable is set to `legacy`.
    /// Read once and cached so a run never mixes defaults.
    pub fn default_repr() -> TableRepr {
        static REPR: OnceLock<TableRepr> = OnceLock::new();
        *REPR.get_or_init(|| match std::env::var("FALCON_TABLE_REPR").as_deref() {
            Ok("legacy") => TableRepr::Legacy,
            _ => TableRepr::Columnar,
        })
    }
}

/// Table construction errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A row's value count differs from the schema's arity.
    ArityMismatch {
        /// 0-based index of the offending row.
        row: usize,
        /// Number of values the row supplied.
        got: usize,
        /// Arity the schema expects.
        expected: usize,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::ArityMismatch { row, got, expected } => {
                write!(
                    f,
                    "row {row} arity mismatch: got {got} values, schema expects {expected}"
                )
            }
        }
    }
}

impl std::error::Error for TableError {}

/// The physical cell store behind a [`Table`].
#[derive(Debug, Clone)]
enum Store {
    /// Row-oriented: one `Tuple` per row.
    Rows(Arc<Vec<Tuple>>),
    /// Column-oriented: one `Column` per attribute, plus a lazily
    /// materialized row view for legacy call sites (built at most once,
    /// shared across clones).
    Cols {
        cols: Arc<Vec<Column>>,
        n_rows: usize,
        row_cache: Arc<OnceLock<Vec<Tuple>>>,
    },
}

/// An in-memory table: a schema plus cells. Cheap to clone (cell storage
/// behind `Arc`s) so the dataflow engine can hand partitions to worker
/// threads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    name: String,
    schema: Schema,
    store: Store,
}

impl Table {
    /// Build a table from rows of values in the default representation.
    /// Ids are assigned positionally.
    ///
    /// # Panics
    /// Panics if any row's arity differs from the schema's; use
    /// [`Table::try_new`] for a fallible variant.
    pub fn new(
        name: impl Into<String>,
        schema: Schema,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Self {
        // falcon-lint: allow(no-panic) — convenience wrapper over `try_new`.
        Self::try_new(name, schema, rows).unwrap_or_else(|e| panic!("Table::new: {e}"))
    }

    /// Build a table from rows of values in the default representation,
    /// returning [`TableError::ArityMismatch`] instead of panicking.
    pub fn try_new(
        name: impl Into<String>,
        schema: Schema,
        rows: impl IntoIterator<Item = Vec<Value>>,
    ) -> Result<Self, TableError> {
        Self::try_new_with(name, schema, rows, TableRepr::default_repr())
    }

    /// Build a table from rows of values in an explicit representation.
    pub fn try_new_with(
        name: impl Into<String>,
        schema: Schema,
        rows: impl IntoIterator<Item = Vec<Value>>,
        repr: TableRepr,
    ) -> Result<Self, TableError> {
        let expected = schema.arity();
        let store = match repr {
            TableRepr::Legacy => {
                let mut out = Vec::new();
                for (i, values) in rows.into_iter().enumerate() {
                    if values.len() != expected {
                        return Err(TableError::ArityMismatch {
                            row: i,
                            got: values.len(),
                            expected,
                        });
                    }
                    out.push(Tuple {
                        id: i as TupleId,
                        values,
                    });
                }
                Store::Rows(Arc::new(out))
            }
            TableRepr::Columnar => {
                let mut builders: Vec<ColumnBuilder> =
                    (0..expected).map(|_| ColumnBuilder::new()).collect();
                let mut n_rows = 0usize;
                for (i, values) in rows.into_iter().enumerate() {
                    if values.len() != expected {
                        return Err(TableError::ArityMismatch {
                            row: i,
                            got: values.len(),
                            expected,
                        });
                    }
                    for (b, v) in builders.iter_mut().zip(&values) {
                        b.push_value(v);
                    }
                    n_rows += 1;
                }
                Store::Cols {
                    cols: Arc::new(builders.into_iter().map(ColumnBuilder::finish).collect()),
                    n_rows,
                    row_cache: Arc::new(OnceLock::new()),
                }
            }
        };
        Ok(Self {
            name: name.into(),
            schema,
            store,
        })
    }

    /// Build a columnar table directly from finished columns (the
    /// streaming CSV reader's path: cells never exist as rows at all).
    /// All columns must have `n_rows` cells and there must be one per
    /// schema attribute; the caller (in-crate) upholds this.
    pub(crate) fn from_columns(
        name: impl Into<String>,
        schema: Schema,
        cols: Vec<Column>,
        n_rows: usize,
    ) -> Self {
        debug_assert_eq!(cols.len(), schema.arity());
        debug_assert!(cols.iter().all(|c| c.len() == n_rows));
        Self {
            name: name.into(),
            schema,
            store: Store::Cols {
                cols: Arc::new(cols),
                n_rows,
                row_cache: Arc::new(OnceLock::new()),
            },
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Which physical representation this table uses.
    pub fn repr(&self) -> TableRepr {
        match &self.store {
            Store::Rows(_) => TableRepr::Legacy,
            Store::Cols { .. } => TableRepr::Columnar,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        match &self.store {
            Store::Rows(rows) => rows.len(),
            Store::Cols { n_rows, .. } => *n_rows,
        }
    }

    /// True iff the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// All rows. On a columnar table this materializes the row view
    /// lazily (at most once, shared across clones); hot paths should use
    /// [`Table::value_ref`] or the `for_each_*` scans instead.
    pub fn rows(&self) -> &[Tuple] {
        match &self.store {
            Store::Rows(rows) => rows,
            Store::Cols {
                cols,
                n_rows,
                row_cache,
            } => row_cache.get_or_init(|| materialize_rows(cols, *n_rows)),
        }
    }

    /// Row by id (ids are positional). Materializes the row view on a
    /// columnar table; see [`Table::rows`].
    pub fn get(&self, id: TupleId) -> Option<&Tuple> {
        self.rows().get(id as usize)
    }

    /// Value of `attr` in row `id`, if both exist.
    pub fn value_of(&self, id: TupleId, attr: &str) -> Option<&Value> {
        let idx = self.schema.index_of(attr)?;
        self.get(id).map(|t| t.value(idx))
    }

    /// Borrowed view of the cell at (`id`, `attr_idx`), if both exist.
    /// On a columnar table this reads the column directly — no row
    /// materialization, no per-cell allocation.
    pub fn value_ref(&self, id: TupleId, attr_idx: usize) -> Option<ValueRef<'_>> {
        match &self.store {
            Store::Rows(rows) => {
                let v = rows.get(id as usize)?.values.get(attr_idx)?;
                Some(v.as_value_ref())
            }
            Store::Cols { cols, .. } => cols.get(attr_idx)?.get(id as usize),
        }
    }

    /// Visit every cell of attribute `attr_idx` in row order. The
    /// column-at-a-time entry point: one linear sweep over the column
    /// arrays (or the row store, in legacy representation).
    pub fn for_each_value(&self, attr_idx: usize, mut f: impl FnMut(TupleId, ValueRef<'_>)) {
        match &self.store {
            Store::Rows(rows) => {
                for t in rows.iter() {
                    let v = t.values.get(attr_idx).map(Value::as_value_ref);
                    f(t.id, v.unwrap_or(ValueRef::Null));
                }
            }
            Store::Cols { cols, .. } => {
                if let Some(col) = cols.get(attr_idx) {
                    col.for_each(|i, v| f(i as TupleId, v));
                }
            }
        }
    }

    /// Visit the rendered text of every cell of attribute `attr_idx` in
    /// row order (nulls render empty, identically to [`Value::render`]).
    /// String cells are passed as zero-copy arena slices on the columnar
    /// path; numeric cells render into one reused scratch buffer.
    pub fn for_each_rendered(&self, attr_idx: usize, mut f: impl FnMut(TupleId, &str)) {
        let mut scratch = String::new();
        self.for_each_value(attr_idx, |id, v| match v {
            ValueRef::Null => f(id, ""),
            ValueRef::Str(s) => f(id, s),
            ValueRef::Num(_) => {
                scratch.clear();
                v.render_into(&mut scratch);
                f(id, &scratch);
            }
        });
    }

    /// This table converted to `repr` (a cheap clone when it already
    /// matches). Cell contents are preserved bit-for-bit; used by the
    /// differential tests that run both representations side by side.
    pub fn to_repr(&self, repr: TableRepr) -> Table {
        if self.repr() == repr {
            return self.clone();
        }
        let rows = self.rows().iter().map(|t| t.values.clone());
        // Arity already validated when `self` was built.
        match Table::try_new_with(self.name.clone(), self.schema.clone(), rows, repr) {
            Ok(t) => t,
            Err(_) => unreachable!("validated rows cannot mismatch arity"),
        }
    }

    /// A new table containing the first `n` rows (re-identified from 0).
    /// Used by the table-size sensitivity experiments (Figure 10).
    pub fn head(&self, n: usize) -> Table {
        let name = format!("{}[..{n}]", self.name);
        match &self.store {
            Store::Rows(rows) => Self {
                name,
                schema: self.schema.clone(),
                store: Store::Rows(Arc::new(
                    rows.iter()
                        .take(n)
                        .enumerate()
                        .map(|(i, t)| Tuple {
                            id: i as TupleId,
                            values: t.values.clone(),
                        })
                        .collect(),
                )),
            },
            Store::Cols { cols, n_rows, .. } => Self {
                name,
                schema: self.schema.clone(),
                store: Store::Cols {
                    cols: Arc::new(cols.iter().map(|c| c.head(n)).collect()),
                    n_rows: n.min(*n_rows),
                    row_cache: Arc::new(OnceLock::new()),
                },
            },
        }
    }

    /// Split row ids into `k` contiguous chunks for parallel scans.
    pub fn splits(&self, k: usize) -> Vec<std::ops::Range<usize>> {
        let n = self.len();
        let k = k.max(1);
        let chunk = n.div_ceil(k).max(1);
        (0..n)
            .step_by(chunk)
            .map(|s| s..(s + chunk).min(n))
            .collect()
    }
}

/// Rebuild the row view of a columnar store. Payloads are reconstructed
/// verbatim (`Value::Str` / `Value::Num` directly — no null-coercion),
/// so the result is bit-identical to the rows the columns were built
/// from.
fn materialize_rows(cols: &[Column], n_rows: usize) -> Vec<Tuple> {
    (0..n_rows)
        .map(|i| Tuple {
            id: i as TupleId,
            values: cols
                .iter()
                .map(|c| c.get(i).map(|v| v.to_value()).unwrap_or(Value::Null))
                .collect(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;

    fn schema() -> Schema {
        Schema::new([("name", AttrType::Str), ("age", AttrType::Num)])
    }

    fn rows() -> Vec<Vec<Value>> {
        vec![
            vec![Value::str("ann"), Value::num(30.0)],
            vec![Value::str("bob"), Value::num(41.0)],
            vec![Value::Null, Value::num(12.0)],
        ]
    }

    fn t() -> Table {
        Table::new("people", schema(), rows())
    }

    #[test]
    fn ids_positional() {
        let t = t();
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(1).unwrap().values[0], Value::str("bob"));
        assert_eq!(t.get(9), None);
    }

    #[test]
    fn value_of_by_name() {
        let t = t();
        assert_eq!(t.value_of(0, "age"), Some(&Value::Num(30.0)));
        assert_eq!(t.value_of(0, "nope"), None);
    }

    #[test]
    fn head_reidentifies() {
        let h = t().head(2);
        assert_eq!(h.len(), 2);
        assert_eq!(h.get(0).unwrap().id, 0);
    }

    #[test]
    fn splits_cover_all_rows() {
        let t = t();
        for k in 1..6 {
            let splits = t.splits(k);
            let total: usize = splits.iter().map(|r| r.len()).sum();
            assert_eq!(total, t.len(), "k={k}");
        }
        assert_eq!(t.head(0).splits(4).len(), 0);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let schema = Schema::new([("a", AttrType::Str)]);
        Table::new("bad", schema, vec![vec![Value::Null, Value::Null]]);
    }

    #[test]
    fn try_new_reports_arity() {
        let schema = Schema::new([("a", AttrType::Str)]);
        let err = Table::try_new("bad", schema, vec![vec![], vec![Value::Null, Value::Null]])
            .unwrap_err();
        assert_eq!(
            err,
            TableError::ArityMismatch {
                row: 0,
                got: 0,
                expected: 1
            }
        );
        assert!(err.to_string().contains("arity"));
    }

    #[test]
    fn reprs_expose_identical_row_views() {
        for repr in [TableRepr::Columnar, TableRepr::Legacy] {
            let t = Table::try_new_with("people", schema(), rows(), repr).unwrap();
            assert_eq!(t.repr(), repr);
            assert_eq!(
                t.rows(),
                Table::try_new_with("p", schema(), rows(), TableRepr::Legacy)
                    .unwrap()
                    .rows()
            );
        }
    }

    #[test]
    fn value_ref_agrees_with_rows() {
        let dirty = vec![
            vec![Value::Str("  ".into()), Value::Num(f64::NAN)],
            vec![Value::Str("x,\"y\"\nz".into()), Value::Num(-0.0)],
            vec![Value::Null, Value::Num(1e300)],
        ];
        let dirty_schema = Schema::new([("s", AttrType::Str), ("n", AttrType::Num)]);
        for repr in [TableRepr::Columnar, TableRepr::Legacy] {
            let t =
                Table::try_new_with("dirty", dirty_schema.clone(), dirty.clone(), repr).unwrap();
            for (i, row) in dirty.iter().enumerate() {
                for (j, v) in row.iter().enumerate() {
                    let got = t.value_ref(i as TupleId, j).unwrap().to_value();
                    match (&got, v) {
                        (Value::Num(a), Value::Num(b)) => {
                            assert_eq!(a.to_bits(), b.to_bits(), "({i},{j})")
                        }
                        _ => assert_eq!(&got, v, "({i},{j})"),
                    }
                }
            }
            assert_eq!(t.value_ref(0, 5), None);
            assert_eq!(t.value_ref(99, 0), None);
        }
    }

    #[test]
    fn to_repr_roundtrips() {
        let t = t();
        let legacy = t.to_repr(TableRepr::Legacy);
        assert_eq!(legacy.repr(), TableRepr::Legacy);
        let back = legacy.to_repr(TableRepr::Columnar);
        assert_eq!(back.repr(), TableRepr::Columnar);
        assert_eq!(back.rows(), t.rows());
        assert_eq!(back.name(), "people");
    }

    #[test]
    fn for_each_scans_match_row_access() {
        for repr in [TableRepr::Columnar, TableRepr::Legacy] {
            let t = Table::try_new_with("people", schema(), rows(), repr).unwrap();
            let mut seen = Vec::new();
            t.for_each_value(0, |id, v| seen.push((id, v.to_value())));
            let expect: Vec<_> = t
                .rows()
                .iter()
                .map(|r| (r.id, r.values[0].clone()))
                .collect();
            assert_eq!(seen, expect);

            let mut rendered = Vec::new();
            t.for_each_rendered(1, |id, s| rendered.push((id, s.to_string())));
            let expect: Vec<_> = t
                .rows()
                .iter()
                .map(|r| (r.id, r.values[1].render()))
                .collect();
            assert_eq!(rendered, expect);
        }
    }
}
