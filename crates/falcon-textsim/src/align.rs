//! Sequence-alignment similarity measures: Needleman-Wunsch (global),
//! Smith-Waterman (local) and Smith-Waterman-Gotoh (affine gaps).
//!
//! Figure 5 lists these as matching-stage-only measures for short strings.
//! Scores use match = +1, mismatch = -1, gap open/extend penalties as noted,
//! normalized by the length of the shorter string so results land in
//! `[0, 1]` (negative raw scores clamp to 0).

const MATCH: f64 = 1.0;
const MISMATCH: f64 = -1.0;
const GAP: f64 = -1.0;
const GAP_OPEN: f64 = -1.0;
const GAP_EXTEND: f64 = -0.5;

fn score(a: char, b: char) -> f64 {
    if a == b {
        MATCH
    } else {
        MISMATCH
    }
}

/// Needleman-Wunsch global alignment score, normalized to `[0, 1]`.
pub fn needleman_wunsch_sim(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() || b.is_empty() {
        return if a.is_empty() && b.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    let mut prev: Vec<f64> = (0..=b.len()).map(|j| j as f64 * GAP).collect();
    let mut cur = vec![0.0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = (i + 1) as f64 * GAP;
        for (j, cb) in b.iter().enumerate() {
            cur[j + 1] = (prev[j] + score(*ca, *cb))
                .max(prev[j + 1] + GAP)
                .max(cur[j] + GAP);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let raw = prev[b.len()];
    (raw / a.len().min(b.len()) as f64).clamp(0.0, 1.0)
}

/// Smith-Waterman local alignment score, normalized to `[0, 1]`.
pub fn smith_waterman_sim(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() || b.is_empty() {
        return if a.is_empty() && b.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    let mut prev = vec![0.0f64; b.len() + 1];
    let mut cur = vec![0.0f64; b.len() + 1];
    let mut best = 0.0f64;
    for ca in &a {
        for (j, cb) in b.iter().enumerate() {
            cur[j + 1] = (prev[j] + score(*ca, *cb))
                .max(prev[j + 1] + GAP)
                .max(cur[j] + GAP)
                .max(0.0);
            best = best.max(cur[j + 1]);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    (best / a.len().min(b.len()) as f64).clamp(0.0, 1.0)
}

/// Smith-Waterman-Gotoh: local alignment with affine gap penalties
/// (open -1, extend -0.5), normalized to `[0, 1]`.
pub fn smith_waterman_gotoh_sim(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() || b.is_empty() {
        return if a.is_empty() && b.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    let n = b.len();
    // h: best score ending at (i, j); e: gap in a; f: gap in b.
    let mut h_prev = vec![0.0f64; n + 1];
    let mut e_prev = vec![f64::NEG_INFINITY; n + 1];
    let mut best = 0.0f64;
    for ca in &a {
        let mut h_cur = vec![0.0f64; n + 1];
        let mut e_cur = vec![f64::NEG_INFINITY; n + 1];
        let mut f = f64::NEG_INFINITY;
        for (j, cb) in b.iter().enumerate() {
            e_cur[j + 1] = (h_prev[j + 1] + GAP_OPEN).max(e_prev[j + 1] + GAP_EXTEND);
            f = (h_cur[j] + GAP_OPEN).max(f + GAP_EXTEND);
            h_cur[j + 1] = (h_prev[j] + score(*ca, *cb))
                .max(e_cur[j + 1])
                .max(f)
                .max(0.0);
            best = best.max(h_cur[j + 1]);
        }
        h_prev = h_cur;
        e_prev = e_cur;
    }
    (best / a.len().min(b.len()) as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_score_one() {
        for f in [
            needleman_wunsch_sim,
            smith_waterman_sim,
            smith_waterman_gotoh_sim,
        ] {
            assert_eq!(f("hello", "hello"), 1.0);
            assert_eq!(f("", ""), 1.0);
        }
    }

    #[test]
    fn disjoint_strings_score_zero() {
        for f in [
            needleman_wunsch_sim,
            smith_waterman_sim,
            smith_waterman_gotoh_sim,
        ] {
            assert_eq!(f("aaaa", "bbbb"), 0.0);
            assert_eq!(f("a", ""), 0.0);
        }
    }

    #[test]
    fn local_beats_global_on_substring() {
        // Smith-Waterman finds the local "water" block; NW pays for the
        // unmatched flanks.
        let sw = smith_waterman_sim("water", "the waterfall");
        let nw = needleman_wunsch_sim("water", "the waterfall");
        assert!(sw > nw);
        assert_eq!(sw, 1.0); // "water" fully embedded
    }

    #[test]
    fn gotoh_prefers_one_long_gap() {
        // With affine gaps, one long gap is cheaper than many scattered ones,
        // so gotoh >= plain SW on a string with a single inserted run.
        let g = smith_waterman_gotoh_sim("abcdef", "abcXXXXdef");
        let s = smith_waterman_sim("abcdef", "abcXXXXdef");
        assert!(g >= s - 1e-12);
    }

    #[test]
    fn scores_in_unit_interval() {
        for (a, b) in [("abc", "abd"), ("ab", "ba"), ("xyz", "zyxwv"), ("q", "qq")] {
            for f in [
                needleman_wunsch_sim,
                smith_waterman_sim,
                smith_waterman_gotoh_sim,
            ] {
                let v = f(a, b);
                assert!((0.0..=1.0).contains(&v), "{a} vs {b} -> {v}");
            }
        }
    }
}
