//! Hybrid token/character measures (Monge-Elkan).

use crate::edit::jaro_winkler;
use crate::tokenize::word_tokens;

/// Monge-Elkan similarity: for each token of `a`, take the best
/// Jaro-Winkler match among tokens of `b`, and average. Symmetrized by
/// taking the max of both directions so `monge_elkan(a, b) ==
/// monge_elkan(b, a)`.
pub fn monge_elkan(a: &str, b: &str) -> f64 {
    let ta = word_tokens(a);
    let tb = word_tokens(b);
    if ta.is_empty() || tb.is_empty() {
        return if ta.is_empty() && tb.is_empty() {
            1.0
        } else {
            0.0
        };
    }
    directional(&ta, &tb).max(directional(&tb, &ta))
}

fn directional(xs: &[String], ys: &[String]) -> f64 {
    let total: f64 = xs
        .iter()
        .map(|x| ys.iter().map(|y| jaro_winkler(x, y)).fold(0.0f64, f64::max))
        .sum();
    total / xs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_is_one() {
        assert_eq!(monge_elkan("john smith", "john smith"), 1.0);
        assert_eq!(monge_elkan("", ""), 1.0);
    }

    #[test]
    fn empty_vs_nonempty_is_zero() {
        assert_eq!(monge_elkan("", "abc"), 0.0);
    }

    #[test]
    fn tolerates_token_reordering() {
        let s = monge_elkan("smith john", "john smith");
        assert!(s > 0.99, "{s}");
    }

    #[test]
    fn tolerates_typos() {
        let s = monge_elkan("jon smith", "john smyth");
        assert!(s > 0.8, "{s}");
        let d = monge_elkan("alpha beta", "gamma delta");
        assert!(s > d);
    }

    #[test]
    fn symmetric() {
        let a = "peter christen";
        let b = "christen p";
        assert!((monge_elkan(a, b) - monge_elkan(b, a)).abs() < 1e-12);
    }
}
