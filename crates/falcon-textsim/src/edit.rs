//! Character-level edit similarity measures: Levenshtein, Jaro and
//! Jaro-Winkler.

/// Raw Levenshtein edit distance (unit costs), O(|a|·|b|) time and O(min)
/// space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let (a, b): (Vec<char>, Vec<char>) = (a.chars().collect(), b.chars().collect());
    let (short, long) = if a.len() <= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut cur = vec![0usize; short.len() + 1];
    for (i, lc) in long.iter().enumerate() {
        cur[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let sub = prev[j] + usize::from(lc != sc);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[short.len()]
}

/// Normalized Levenshtein similarity `1 - ED / max(|a|, |b|)` in `[0, 1]`.
pub fn levenshtein_sim(a: &str, b: &str) -> f64 {
    let max = a.chars().count().max(b.chars().count());
    if max == 0 {
        return 1.0;
    }
    1.0 - levenshtein(a, b) as f64 / max as f64
}

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches_a = Vec::new();
    for (i, ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == *ca {
                b_used[j] = true;
                matches_a.push(*ca);
                break;
            }
        }
    }
    let m = matches_a.len();
    if m == 0 {
        return 0.0;
    }
    let matches_b: Vec<char> = b
        .iter()
        .zip(b_used.iter())
        .filter_map(|(c, used)| used.then_some(*c))
        .collect();
    let transpositions = matches_a
        .iter()
        .zip(matches_b.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro-Winkler similarity with the standard prefix scale 0.1 and prefix cap
/// of 4 characters.
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
    }

    #[test]
    fn levenshtein_sim_bounds() {
        assert_eq!(levenshtein_sim("", ""), 1.0);
        assert_eq!(levenshtein_sim("abc", "abc"), 1.0);
        assert_eq!(levenshtein_sim("abc", "xyz"), 0.0);
        let s = levenshtein_sim("kitten", "sitting");
        assert!((s - (1.0 - 3.0 / 7.0)).abs() < 1e-12);
    }

    #[test]
    fn jaro_known_values() {
        assert!((jaro("martha", "marhta") - 0.944444).abs() < 1e-4);
        assert!((jaro("dixon", "dicksonx") - 0.766667).abs() < 1e-4);
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("a", ""), 0.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
    }

    #[test]
    fn jaro_winkler_boosts_prefix() {
        let jw = jaro_winkler("martha", "marhta");
        assert!((jw - 0.961111).abs() < 1e-4);
        assert!(jaro_winkler("prefix", "preface") > jaro("prefix", "preface"));
        assert_eq!(jaro_winkler("same", "same"), 1.0);
    }

    #[test]
    fn jaro_is_symmetric() {
        for (a, b) in [("dwayne", "duane"), ("crate", "trace"), ("a", "ab")] {
            assert!((jaro(a, b) - jaro(b, a)).abs() < 1e-12);
        }
    }
}
