//! String and numeric similarity substrate for Falcon.
//!
//! Falcon's automatically generated features are all of the form
//! `sim(a.x, b.y)` where `sim` is one of the similarity measures listed in
//! Figure 5 of the paper. This crate implements every measure in that table,
//! the tokenizers they rely on, and the prefix/length-bound arithmetic that
//! the index-based filters of Section 7.4 need.
//!
//! Measures are exposed through the [`SimFunction`] enum so that rules and
//! features can be serialized, compared, and dispatched uniformly. All
//! similarity scores are oriented so that **larger means more similar** and
//! fall in `[0, 1]`, except the two numeric distance measures
//! ([`SimFunction::AbsDiff`], [`SimFunction::RelDiff`]) where **smaller means
//! more similar** (matching the paper's blocking-rule predicates such as
//! `abs_diff(a.price, b.price) >= 10 -> drop`).

pub mod align;
pub mod edit;
pub mod hybrid;
pub mod numeric;
pub mod prefix;
pub mod profile;
pub mod sets;
pub mod tfidf;
pub mod tokenize;

use serde::{Deserialize, Serialize};

pub use profile::{RenderedColumn, TokenDict, TokenProfile};
pub use tfidf::TfIdfModel;
pub use tokenize::Tokenizer;

/// A similarity (or distance) measure over attribute values.
///
/// The set-based measures carry the [`Tokenizer`] used to turn strings into
/// token sets, mirroring feature names in the paper like `Jaccard_word` and
/// `Dice_3gram`.
///
/// ```
/// use falcon_textsim::{SimFunction, SimContext, Tokenizer};
///
/// let jaccard = SimFunction::Jaccard(Tokenizer::Word);
/// let ctx = SimContext::empty();
/// let s = jaccard.score_str("digital camera", "compact digital camera", &ctx).unwrap();
/// assert!((s - 2.0 / 3.0).abs() < 1e-9);
/// assert_eq!(jaccard.name(), "jaccard_word");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SimFunction {
    /// 1.0 if the two values are identical, else 0.0.
    ExactMatch,
    /// Jaccard coefficient `|x ∩ y| / |x ∪ y|` over token sets.
    Jaccard(Tokenizer),
    /// Dice coefficient `2|x ∩ y| / (|x| + |y|)`.
    Dice(Tokenizer),
    /// Overlap coefficient `|x ∩ y| / min(|x|, |y|)`.
    Overlap(Tokenizer),
    /// Cosine similarity `|x ∩ y| / sqrt(|x| · |y|)` over token sets.
    Cosine(Tokenizer),
    /// Normalized Levenshtein similarity `1 - ED(x, y) / max(|x|, |y|)`.
    Levenshtein,
    /// Jaro similarity.
    Jaro,
    /// Jaro-Winkler similarity (prefix-boosted Jaro).
    JaroWinkler,
    /// Monge-Elkan: average best Jaro-Winkler match of each token of x in y.
    MongeElkan,
    /// Needleman-Wunsch global alignment score, normalized to [0, 1].
    NeedlemanWunsch,
    /// Smith-Waterman local alignment score, normalized to [0, 1].
    SmithWaterman,
    /// Smith-Waterman with Gotoh affine gap penalties, normalized to [0, 1].
    SmithWatermanGotoh,
    /// TF/IDF cosine over word tokens (requires a corpus model).
    TfIdf,
    /// Soft TF/IDF: TF/IDF where tokens within Jaro-Winkler 0.9 also match.
    SoftTfIdf,
    /// Absolute numeric difference `|x - y|` (distance: smaller is closer).
    AbsDiff,
    /// Relative numeric difference `|x - y| / max(|x|, |y|)` (distance).
    RelDiff,
}

impl SimFunction {
    /// True for measures where a *larger* score means *more similar*.
    pub fn higher_is_similar(self) -> bool {
        !matches!(self, SimFunction::AbsDiff | SimFunction::RelDiff)
    }

    /// True for measures that operate on numeric values.
    pub fn is_numeric(self) -> bool {
        matches!(
            self,
            SimFunction::AbsDiff | SimFunction::RelDiff | SimFunction::ExactMatch
        )
    }

    /// True for the token-set measures that support prefix/position/length
    /// filters (the `sim ∈ {Jaccard, Dice, Overlap, Cosine, Levenshtein}`
    /// branch of Algorithm 1 in the paper).
    pub fn is_set_based(self) -> bool {
        matches!(
            self,
            SimFunction::Jaccard(_)
                | SimFunction::Dice(_)
                | SimFunction::Overlap(_)
                | SimFunction::Cosine(_)
        )
    }

    /// Tokenizer used by this measure, if it is token based.
    pub fn tokenizer(self) -> Option<Tokenizer> {
        match self {
            SimFunction::Jaccard(t)
            | SimFunction::Dice(t)
            | SimFunction::Overlap(t)
            | SimFunction::Cosine(t) => Some(t),
            SimFunction::MongeElkan | SimFunction::TfIdf | SimFunction::SoftTfIdf => {
                Some(Tokenizer::Word)
            }
            _ => None,
        }
    }

    /// True for measures cheap enough that the paper allows them in blocking
    /// rules (Figure 5 marks the rest with `*`: "Not used for blocking").
    pub fn usable_for_blocking(self) -> bool {
        !matches!(
            self,
            SimFunction::Jaro
                | SimFunction::JaroWinkler
                | SimFunction::MongeElkan
                | SimFunction::NeedlemanWunsch
                | SimFunction::SmithWaterman
                | SimFunction::SmithWatermanGotoh
                | SimFunction::TfIdf
                | SimFunction::SoftTfIdf
        )
    }

    /// Score two string values. Numeric measures parse the strings and
    /// return `None` when parsing fails; every measure returns `None` when
    /// either side is empty/missing so learners can treat it as absent.
    pub fn score_str(self, a: &str, b: &str, ctx: &SimContext<'_>) -> Option<f64> {
        if a.is_empty() || b.is_empty() {
            return None;
        }
        Some(match self {
            SimFunction::ExactMatch => {
                if a == b {
                    1.0
                } else {
                    0.0
                }
            }
            SimFunction::Jaccard(t) => sets::jaccard(&t.tokenize(a), &t.tokenize(b)),
            SimFunction::Dice(t) => sets::dice(&t.tokenize(a), &t.tokenize(b)),
            SimFunction::Overlap(t) => sets::overlap_coefficient(&t.tokenize(a), &t.tokenize(b)),
            SimFunction::Cosine(t) => sets::cosine(&t.tokenize(a), &t.tokenize(b)),
            SimFunction::Levenshtein => edit::levenshtein_sim(a, b),
            SimFunction::Jaro => edit::jaro(a, b),
            SimFunction::JaroWinkler => edit::jaro_winkler(a, b),
            SimFunction::MongeElkan => hybrid::monge_elkan(a, b),
            SimFunction::NeedlemanWunsch => align::needleman_wunsch_sim(a, b),
            SimFunction::SmithWaterman => align::smith_waterman_sim(a, b),
            SimFunction::SmithWatermanGotoh => align::smith_waterman_gotoh_sim(a, b),
            SimFunction::TfIdf => ctx.tfidf?.cosine(a, b)?,
            SimFunction::SoftTfIdf => ctx.tfidf?.soft_cosine(a, b, 0.9)?,
            SimFunction::AbsDiff => numeric::abs_diff(a.parse().ok()?, b.parse().ok()?),
            SimFunction::RelDiff => numeric::rel_diff(a.parse().ok()?, b.parse().ok()?),
        })
    }

    /// Score two numeric values directly.
    pub fn score_num(self, a: f64, b: f64) -> Option<f64> {
        Some(match self {
            SimFunction::ExactMatch => {
                if a == b {
                    1.0
                } else {
                    0.0
                }
            }
            SimFunction::AbsDiff => numeric::abs_diff(a, b),
            SimFunction::RelDiff => numeric::rel_diff(a, b),
            SimFunction::Levenshtein => edit::levenshtein_sim(&fmt_num(a), &fmt_num(b)),
            _ => return None,
        })
    }

    /// Stable display name used in feature names and rule dumps, e.g.
    /// `jaccard_word` or `abs_diff`.
    pub fn name(self) -> String {
        match self {
            SimFunction::ExactMatch => "exact_match".into(),
            SimFunction::Jaccard(t) => format!("jaccard_{}", t.suffix()),
            SimFunction::Dice(t) => format!("dice_{}", t.suffix()),
            SimFunction::Overlap(t) => format!("overlap_{}", t.suffix()),
            SimFunction::Cosine(t) => format!("cosine_{}", t.suffix()),
            SimFunction::Levenshtein => "levenshtein".into(),
            SimFunction::Jaro => "jaro".into(),
            SimFunction::JaroWinkler => "jaro_winkler".into(),
            SimFunction::MongeElkan => "monge_elkan".into(),
            SimFunction::NeedlemanWunsch => "needleman_wunsch".into(),
            SimFunction::SmithWaterman => "smith_waterman".into(),
            SimFunction::SmithWatermanGotoh => "smith_waterman_gotoh".into(),
            SimFunction::TfIdf => "tf_idf".into(),
            SimFunction::SoftTfIdf => "soft_tf_idf".into(),
            SimFunction::AbsDiff => "abs_diff".into(),
            SimFunction::RelDiff => "rel_diff".into(),
        }
    }
}

fn fmt_num(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// Shared evaluation context. TF/IDF-style measures need corpus statistics;
/// the optional [`TokenProfile`]s let callers hit the pre-tokenized fast
/// path of set-based measures instead of re-tokenizing per feature; the
/// rest of the measures ignore the context.
#[derive(Default, Clone, Copy)]
pub struct SimContext<'a> {
    /// Corpus model for [`SimFunction::TfIdf`] / [`SimFunction::SoftTfIdf`].
    pub tfidf: Option<&'a TfIdfModel>,
    /// Pre-tokenized profile of the left (A-side) table, if built.
    pub a_profile: Option<&'a TokenProfile>,
    /// Pre-tokenized profile of the right (B-side) table, if built.
    pub b_profile: Option<&'a TokenProfile>,
}

impl<'a> SimContext<'a> {
    /// Context without corpus statistics (TF/IDF measures return `None`).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Context with a TF/IDF corpus model.
    pub fn with_tfidf(model: &'a TfIdfModel) -> Self {
        Self {
            tfidf: Some(model),
            ..Self::default()
        }
    }

    /// Attach token profiles for the A and B tables, enabling the
    /// sorted-id fast path in feature computation.
    pub fn with_profiles(mut self, a: &'a TokenProfile, b: &'a TokenProfile) -> Self {
        self.a_profile = Some(a);
        self.b_profile = Some(b);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        assert_eq!(SimFunction::Jaccard(Tokenizer::Word).name(), "jaccard_word");
        assert_eq!(SimFunction::Dice(Tokenizer::QGram(3)).name(), "dice_3gram");
        assert_eq!(SimFunction::AbsDiff.name(), "abs_diff");
    }

    #[test]
    fn orientation_flags() {
        assert!(SimFunction::Jaccard(Tokenizer::Word).higher_is_similar());
        assert!(!SimFunction::AbsDiff.higher_is_similar());
        assert!(SimFunction::AbsDiff.is_numeric());
        assert!(SimFunction::Cosine(Tokenizer::Word).is_set_based());
        assert!(!SimFunction::Levenshtein.is_set_based());
    }

    #[test]
    fn blocking_eligibility_matches_figure5() {
        assert!(SimFunction::Jaccard(Tokenizer::Word).usable_for_blocking());
        assert!(SimFunction::Levenshtein.usable_for_blocking());
        assert!(SimFunction::ExactMatch.usable_for_blocking());
        assert!(!SimFunction::Jaro.usable_for_blocking());
        assert!(!SimFunction::TfIdf.usable_for_blocking());
        assert!(!SimFunction::MongeElkan.usable_for_blocking());
    }

    #[test]
    fn score_str_dispatches() {
        let ctx = SimContext::empty();
        let j = SimFunction::Jaccard(Tokenizer::Word)
            .score_str("a b c", "a b d", &ctx)
            .unwrap();
        assert!((j - 0.5).abs() < 1e-9);
        assert_eq!(SimFunction::ExactMatch.score_str("x", "x", &ctx), Some(1.0));
        assert_eq!(SimFunction::AbsDiff.score_str("10", "4", &ctx), Some(6.0));
        assert_eq!(SimFunction::AbsDiff.score_str("ten", "4", &ctx), None);
        assert_eq!(
            SimFunction::Jaccard(Tokenizer::Word).score_str("", "x", &ctx),
            None
        );
    }

    #[test]
    fn tfidf_requires_context() {
        let ctx = SimContext::empty();
        assert_eq!(SimFunction::TfIdf.score_str("a", "a", &ctx), None);
        let model = TfIdfModel::build(["red apple", "green apple"].iter().copied());
        let ctx = SimContext::with_tfidf(&model);
        let s = SimFunction::TfIdf
            .score_str("red apple", "red apple", &ctx)
            .unwrap();
        assert!((s - 1.0).abs() < 1e-9);
    }
}
