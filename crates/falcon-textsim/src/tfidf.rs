//! Corpus-weighted TF/IDF and Soft TF/IDF similarity (Figure 5: long-string
//! measures, matching stage only).

use crate::edit::jaro_winkler;
use crate::tokenize::word_tokens;
use std::collections::HashMap;

/// Inverse-document-frequency statistics over a corpus of attribute values.
///
/// Build once per attribute correspondence from (a sample of) both tables,
/// then evaluate [`TfIdfModel::cosine`] / [`TfIdfModel::soft_cosine`] on
/// value pairs.
#[derive(Debug, Clone, Default)]
pub struct TfIdfModel {
    idf: HashMap<String, f64>,
    n_docs: usize,
}

impl TfIdfModel {
    /// Build the model from an iterator of documents (attribute values).
    pub fn build<'a>(docs: impl Iterator<Item = &'a str>) -> Self {
        let mut df: HashMap<String, usize> = HashMap::new();
        let mut n_docs = 0usize;
        for doc in docs {
            n_docs += 1;
            let mut seen: Vec<String> = word_tokens(doc);
            seen.sort_unstable();
            seen.dedup();
            for tok in seen {
                *df.entry(tok).or_insert(0) += 1;
            }
        }
        let idf = df
            .into_iter()
            .map(|(tok, d)| (tok, ((1 + n_docs) as f64 / (1 + d) as f64).ln() + 1.0))
            .collect();
        Self { idf, n_docs }
    }

    /// Number of documents the model was built from.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// IDF weight for a token; unseen tokens get the maximum weight.
    pub fn idf(&self, token: &str) -> f64 {
        self.idf
            .get(token)
            .copied()
            .unwrap_or_else(|| ((1 + self.n_docs) as f64).ln() + 1.0)
    }

    /// Token-sorted tf·idf weights. A sorted `Vec` rather than a
    /// `HashMap`: the cosine dot products and norms below accumulate
    /// floats in iteration order, and `HashMap` iteration order varies
    /// per *instance* (std's `RandomState` differs between maps built on
    /// the same thread), which would break bit-identical replay.
    fn weight_vector(&self, s: &str) -> Vec<(String, f64)> {
        let mut toks = word_tokens(s);
        toks.sort_unstable();
        let mut tf: Vec<(String, f64)> = Vec::new();
        for tok in toks {
            match tf.last_mut() {
                Some((t, w)) if *t == tok => *w += 1.0,
                _ => tf.push((tok, 1.0)),
            }
        }
        for (tok, w) in tf.iter_mut() {
            *w *= self.idf(tok);
        }
        tf
    }

    /// TF/IDF cosine similarity in `[0, 1]`; `None` when either side has no
    /// tokens.
    pub fn cosine(&self, a: &str, b: &str) -> Option<f64> {
        let va = self.weight_vector(a);
        let vb = self.weight_vector(b);
        if va.is_empty() || vb.is_empty() {
            return None;
        }
        let dot: f64 = va
            .iter()
            .filter_map(|(tok, wa)| {
                vb.binary_search_by(|(t, _)| t.as_str().cmp(tok))
                    .ok()
                    .map(|i| wa * vb[i].1)
            })
            .sum();
        let na: f64 = va.iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
        let nb: f64 = vb.iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
        Some((dot / (na * nb)).clamp(0.0, 1.0))
    }

    /// Soft TF/IDF: like [`Self::cosine`], but tokens of `a` and `b` whose
    /// Jaro-Winkler similarity is at least `theta` are treated as partial
    /// matches weighted by that similarity.
    pub fn soft_cosine(&self, a: &str, b: &str, theta: f64) -> Option<f64> {
        let ta = word_tokens(a);
        let tb = word_tokens(b);
        if ta.is_empty() || tb.is_empty() {
            return None;
        }
        let va = self.weight_vector(a);
        let vb = self.weight_vector(b);
        let mut dot = 0.0;
        for (tok_a, wa) in &va {
            // Best close token of b for tok_a; ties keep the first in
            // token-sorted order, so the choice is deterministic.
            let mut best: Option<(f64, f64)> = None;
            for (tok_b, wb) in &vb {
                let s = if tok_a == tok_b {
                    1.0
                } else {
                    jaro_winkler(tok_a, tok_b)
                };
                if s >= theta && best.is_none_or(|(bs, _)| s > bs) {
                    best = Some((s, *wb));
                }
            }
            if let Some((s, wb)) = best {
                dot += wa * wb * s;
            }
        }
        let na: f64 = va.iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
        let nb: f64 = vb.iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
        Some((dot / (na * nb)).clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TfIdfModel {
        TfIdfModel::build(
            [
                "the quick brown fox",
                "the lazy dog",
                "the quick dog",
                "a brown cow",
            ]
            .iter()
            .copied(),
        )
    }

    #[test]
    fn identical_docs_score_one() {
        let m = model();
        assert!((m.cosine("quick brown fox", "quick brown fox").unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disjoint_docs_score_zero() {
        let m = model();
        assert_eq!(m.cosine("fox", "cow").unwrap(), 0.0);
    }

    #[test]
    fn rare_tokens_weigh_more() {
        let m = model();
        // "fox" (rare) shared vs "the" (common) shared.
        let rare = m.cosine("fox alpha", "fox beta").unwrap();
        let common = m.cosine("the alpha", "the beta").unwrap();
        assert!(rare > common, "{rare} vs {common}");
    }

    #[test]
    fn soft_cosine_tolerates_typos() {
        let m = model();
        let hard = m.cosine("quick browm fox", "quick brown fox").unwrap();
        let soft = m
            .soft_cosine("quick browm fox", "quick brown fox", 0.9)
            .unwrap();
        assert!(soft > hard, "{soft} vs {hard}");
    }

    #[test]
    fn empty_is_none() {
        let m = model();
        assert_eq!(m.cosine("", "abc"), None);
        assert_eq!(m.soft_cosine("abc", "", 0.9), None);
    }
}
