//! Set-based similarity coefficients over token sets.
//!
//! These four measures (plus Levenshtein) are the ones the paper's
//! prefix/position/length filters know how to index (Section 7.4).
//!
//! Two kernel families are provided, and they must stay numerically
//! bit-identical (a property test in `falcon-core` enforces it):
//!
//! * the legacy `BTreeSet<String>` kernels, used when values are tokenized
//!   on the fly, and
//! * sorted-`u32`-slice kernels (`*_ids`) over interned token ids from a
//!   [`crate::profile::TokenProfile`] — a single O(|x|+|y|) merge with
//!   zero allocation per comparison, the hot path of `gen_fvs`.
//!
//! Empty-set semantics are shared by both families: the empty set scores
//! 0.0 against anything, including itself (never `NaN`). A *missing*
//! value is handled one level up (`SimFunction::score_str` returns `None`
//! for empty strings); an empty token set can still arise from a
//! non-empty string, e.g. punctuation-only text under `Tokenizer::Word`.

use std::collections::BTreeSet;

fn intersection_size(x: &BTreeSet<String>, y: &BTreeSet<String>) -> usize {
    if x.len() <= y.len() {
        x.iter().filter(|t| y.contains(*t)).count()
    } else {
        y.iter().filter(|t| x.contains(*t)).count()
    }
}

/// Jaccard coefficient `|x ∩ y| / |x ∪ y|`.
pub fn jaccard(x: &BTreeSet<String>, y: &BTreeSet<String>) -> f64 {
    if x.is_empty() && y.is_empty() {
        return 0.0;
    }
    let i = intersection_size(x, y) as f64;
    i / (x.len() as f64 + y.len() as f64 - i)
}

/// Dice coefficient `2|x ∩ y| / (|x| + |y|)`.
pub fn dice(x: &BTreeSet<String>, y: &BTreeSet<String>) -> f64 {
    if x.is_empty() && y.is_empty() {
        return 0.0;
    }
    2.0 * intersection_size(x, y) as f64 / (x.len() + y.len()) as f64
}

/// Overlap coefficient `|x ∩ y| / min(|x|, |y|)`.
pub fn overlap_coefficient(x: &BTreeSet<String>, y: &BTreeSet<String>) -> f64 {
    let m = x.len().min(y.len());
    if m == 0 {
        return 0.0;
    }
    intersection_size(x, y) as f64 / m as f64
}

/// Set cosine `|x ∩ y| / sqrt(|x| · |y|)`.
pub fn cosine(x: &BTreeSet<String>, y: &BTreeSet<String>) -> f64 {
    if x.is_empty() || y.is_empty() {
        return 0.0;
    }
    intersection_size(x, y) as f64 / ((x.len() * y.len()) as f64).sqrt()
}

/// `|x ∩ y|` of two sorted, deduplicated id slices by linear merge.
pub fn intersection_size_ids(x: &[u32], y: &[u32]) -> usize {
    let (mut i, mut j, mut n) = (0usize, 0usize, 0usize);
    while i < x.len() && j < y.len() {
        match x[i].cmp(&y[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    n
}

/// Jaccard over sorted id slices; same arithmetic as [`jaccard`].
pub fn jaccard_ids(x: &[u32], y: &[u32]) -> f64 {
    if x.is_empty() && y.is_empty() {
        return 0.0;
    }
    let i = intersection_size_ids(x, y) as f64;
    i / (x.len() as f64 + y.len() as f64 - i)
}

/// Dice over sorted id slices; same arithmetic as [`dice`].
pub fn dice_ids(x: &[u32], y: &[u32]) -> f64 {
    if x.is_empty() && y.is_empty() {
        return 0.0;
    }
    2.0 * intersection_size_ids(x, y) as f64 / (x.len() + y.len()) as f64
}

/// Overlap coefficient over sorted id slices; same arithmetic as
/// [`overlap_coefficient`].
pub fn overlap_ids(x: &[u32], y: &[u32]) -> f64 {
    let m = x.len().min(y.len());
    if m == 0 {
        return 0.0;
    }
    intersection_size_ids(x, y) as f64 / m as f64
}

/// Set cosine over sorted id slices; same arithmetic as [`cosine`].
pub fn cosine_ids(x: &[u32], y: &[u32]) -> f64 {
    if x.is_empty() || y.is_empty() {
        return 0.0;
    }
    intersection_size_ids(x, y) as f64 / ((x.len() * y.len()) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(words: &[&str]) -> BTreeSet<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn identical_sets_score_one() {
        let x = set(&["a", "b", "c"]);
        for f in [jaccard, dice, overlap_coefficient, cosine] {
            assert!((f(&x, &x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn disjoint_sets_score_zero() {
        let x = set(&["a", "b"]);
        let y = set(&["c", "d"]);
        for f in [jaccard, dice, overlap_coefficient, cosine] {
            assert_eq!(f(&x, &y), 0.0);
        }
    }

    #[test]
    fn known_values() {
        let x = set(&["a", "b", "c"]);
        let y = set(&["b", "c", "d"]);
        assert!((jaccard(&x, &y) - 0.5).abs() < 1e-12); // 2/4
        assert!((dice(&x, &y) - 2.0 / 3.0).abs() < 1e-12); // 4/6
        assert!((overlap_coefficient(&x, &y) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cosine(&x, &y) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_subset_is_one() {
        let x = set(&["a", "b"]);
        let y = set(&["a", "b", "c", "d"]);
        assert_eq!(overlap_coefficient(&x, &y), 1.0);
    }

    #[test]
    fn empty_sets_are_zero_not_nan() {
        let e = set(&[]);
        let x = set(&["a"]);
        for f in [jaccard, dice, overlap_coefficient, cosine] {
            assert_eq!(f(&e, &e), 0.0);
            assert_eq!(f(&e, &x), 0.0);
        }
    }

    #[test]
    fn id_kernels_match_known_values() {
        let x = [1u32, 2, 3];
        let y = [2u32, 3, 4];
        assert_eq!(intersection_size_ids(&x, &y), 2);
        assert!((jaccard_ids(&x, &y) - 0.5).abs() < 1e-12);
        assert!((dice_ids(&x, &y) - 2.0 / 3.0).abs() < 1e-12);
        assert!((overlap_ids(&x, &y) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cosine_ids(&x, &y) - 2.0 / 3.0).abs() < 1e-12);
        for f in [jaccard_ids, dice_ids, overlap_ids, cosine_ids] {
            assert!((f(&x, &x) - 1.0).abs() < 1e-12);
            assert_eq!(f(&x, &[7, 8]), 0.0);
        }
    }

    /// Empty-set semantics agree between the legacy `BTreeSet` kernels and
    /// the id kernels: empty scores 0.0 against anything, never `NaN`.
    #[test]
    fn id_kernels_empty_semantics_match_legacy() {
        let e_ids: [u32; 0] = [];
        let x_ids = [5u32];
        let e = set(&[]);
        let x = set(&["a"]);
        type Pair = (
            fn(&BTreeSet<String>, &BTreeSet<String>) -> f64,
            fn(&[u32], &[u32]) -> f64,
        );
        let cases: [Pair; 4] = [
            (jaccard, jaccard_ids),
            (dice, dice_ids),
            (overlap_coefficient, overlap_ids),
            (cosine, cosine_ids),
        ];
        for (legacy, ids) in cases {
            assert_eq!(legacy(&e, &e).to_bits(), ids(&e_ids, &e_ids).to_bits());
            assert_eq!(legacy(&e, &x).to_bits(), ids(&e_ids, &x_ids).to_bits());
            assert_eq!(legacy(&x, &e).to_bits(), ids(&x_ids, &e_ids).to_bits());
            assert!(!ids(&e_ids, &e_ids).is_nan());
        }
    }

    /// Exhaustive-ish cross-check: id kernels equal the legacy kernels for
    /// every subset pair of a small universe (bit-identical floats).
    #[test]
    fn id_kernels_bit_identical_on_subsets() {
        let universe = ["a", "b", "c", "d"];
        for xm in 0u32..16 {
            for ym in 0u32..16 {
                let xs: Vec<&str> = universe
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| xm & (1 << i) != 0)
                    .map(|(_, s)| *s)
                    .collect();
                let ys: Vec<&str> = universe
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| ym & (1 << i) != 0)
                    .map(|(_, s)| *s)
                    .collect();
                let x = set(&xs);
                let y = set(&ys);
                // Interned ids: position in the universe (already sorted).
                let xi: Vec<u32> = (0..4).filter(|i| xm & (1 << i) != 0).collect();
                let yi: Vec<u32> = (0..4).filter(|i| ym & (1 << i) != 0).collect();
                assert_eq!(jaccard(&x, &y).to_bits(), jaccard_ids(&xi, &yi).to_bits());
                assert_eq!(dice(&x, &y).to_bits(), dice_ids(&xi, &yi).to_bits());
                assert_eq!(
                    overlap_coefficient(&x, &y).to_bits(),
                    overlap_ids(&xi, &yi).to_bits()
                );
                assert_eq!(cosine(&x, &y).to_bits(), cosine_ids(&xi, &yi).to_bits());
            }
        }
    }
}
