//! Set-based similarity coefficients over token sets.
//!
//! These four measures (plus Levenshtein) are the ones the paper's
//! prefix/position/length filters know how to index (Section 7.4).

use std::collections::BTreeSet;

fn intersection_size(x: &BTreeSet<String>, y: &BTreeSet<String>) -> usize {
    if x.len() <= y.len() {
        x.iter().filter(|t| y.contains(*t)).count()
    } else {
        y.iter().filter(|t| x.contains(*t)).count()
    }
}

/// Jaccard coefficient `|x ∩ y| / |x ∪ y|`.
pub fn jaccard(x: &BTreeSet<String>, y: &BTreeSet<String>) -> f64 {
    if x.is_empty() && y.is_empty() {
        return 0.0;
    }
    let i = intersection_size(x, y) as f64;
    i / (x.len() as f64 + y.len() as f64 - i)
}

/// Dice coefficient `2|x ∩ y| / (|x| + |y|)`.
pub fn dice(x: &BTreeSet<String>, y: &BTreeSet<String>) -> f64 {
    if x.is_empty() && y.is_empty() {
        return 0.0;
    }
    2.0 * intersection_size(x, y) as f64 / (x.len() + y.len()) as f64
}

/// Overlap coefficient `|x ∩ y| / min(|x|, |y|)`.
pub fn overlap_coefficient(x: &BTreeSet<String>, y: &BTreeSet<String>) -> f64 {
    let m = x.len().min(y.len());
    if m == 0 {
        return 0.0;
    }
    intersection_size(x, y) as f64 / m as f64
}

/// Set cosine `|x ∩ y| / sqrt(|x| · |y|)`.
pub fn cosine(x: &BTreeSet<String>, y: &BTreeSet<String>) -> f64 {
    if x.is_empty() || y.is_empty() {
        return 0.0;
    }
    intersection_size(x, y) as f64 / ((x.len() * y.len()) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(words: &[&str]) -> BTreeSet<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn identical_sets_score_one() {
        let x = set(&["a", "b", "c"]);
        for f in [jaccard, dice, overlap_coefficient, cosine] {
            assert!((f(&x, &x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn disjoint_sets_score_zero() {
        let x = set(&["a", "b"]);
        let y = set(&["c", "d"]);
        for f in [jaccard, dice, overlap_coefficient, cosine] {
            assert_eq!(f(&x, &y), 0.0);
        }
    }

    #[test]
    fn known_values() {
        let x = set(&["a", "b", "c"]);
        let y = set(&["b", "c", "d"]);
        assert!((jaccard(&x, &y) - 0.5).abs() < 1e-12); // 2/4
        assert!((dice(&x, &y) - 2.0 / 3.0).abs() < 1e-12); // 4/6
        assert!((overlap_coefficient(&x, &y) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cosine(&x, &y) - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_subset_is_one() {
        let x = set(&["a", "b"]);
        let y = set(&["a", "b", "c", "d"]);
        assert_eq!(overlap_coefficient(&x, &y), 1.0);
    }

    #[test]
    fn empty_sets_are_zero_not_nan() {
        let e = set(&[]);
        let x = set(&["a"]);
        for f in [jaccard, dice, overlap_coefficient, cosine] {
            assert_eq!(f(&e, &e), 0.0);
            assert_eq!(f(&e, &x), 0.0);
        }
    }
}
