//! Prefix-length and length-bound arithmetic backing the index-based filters
//! of Section 7.4.
//!
//! Every function here encodes a *necessary* condition for a similarity
//! predicate `sim(x, y) >= t` to hold, derived from the standard
//! set-similarity-join bounds (Chaudhuri et al. 2006; Xiao et al. 2011; the
//! survey the paper cites as \[56\]). Soundness of these bounds is what makes
//! the blocking filters lossless, and is property-tested in this crate.
//!
//! Derivations (`i = |x ∩ y|`):
//! * Jaccard `i/(|x|+|y|-i) >= t`  ⇒  `i >= t/(1+t)·(|x|+|y|)` and
//!   `t·|y| <= |x| <= |y|/t`.
//! * Dice `2i/(|x|+|y|) >= t`      ⇒  `i >= t/2·(|x|+|y|)` and
//!   `t/(2-t)·|y| <= |x| <= (2-t)/t·|y|`.
//! * Cosine `i/√(|x||y|) >= t`     ⇒  `i >= t·√(|x||y|)` and
//!   `t²·|y| <= |x| <= |y|/t²`.
//! * Overlap coefficient `i/min >= t` ⇒ `i >= ⌈t·min(|x|,|y|)⌉`; no length
//!   bound exists (a tiny set can overlap fully with a huge one).
//! * Normalized Levenshtein `1 - ED/max >= t` ⇒ `ED <= (1-t)·max` ⇒ character
//!   lengths satisfy `t·|y| <= |x| <= |y|/t`.

use crate::SimFunction;

/// Ceil of `a * b` computed in f64 with a small epsilon guard, never below 1
/// for positive products.
fn ceil_mul(a: f64, b: f64) -> usize {
    (a * b - 1e-9).ceil().max(0.0) as usize
}

/// Inclusive bounds `[lo, hi]` on the candidate-side length `|x|` given the
/// probe-side length `|y|`, for predicate `sim(x, y) >= t`.
///
/// Lengths are token-set sizes for set measures and character counts for
/// Levenshtein. Returns `None` when the measure admits no length bound.
pub fn length_bounds(sim: SimFunction, t: f64, probe_len: usize) -> Option<(usize, usize)> {
    if !(0.0..=1.0).contains(&t) || t <= 0.0 {
        return None;
    }
    let y = probe_len as f64;
    let (lo, hi) = match sim {
        SimFunction::Jaccard(_) | SimFunction::Levenshtein => (t * y, y / t),
        SimFunction::Dice(_) => (t / (2.0 - t) * y, (2.0 - t) / t * y),
        SimFunction::Cosine(_) => (t * t * y, y / (t * t)),
        _ => return None,
    };
    Some((
        (lo - 1e-9).ceil().max(0.0) as usize,
        (hi + 1e-9).floor() as usize,
    ))
}

/// Minimum token overlap `o` required between `x` and `y` (with the given
/// set sizes) for `sim(x, y) >= t` to hold. Used by the position filter.
/// Returns `None` for measures without an overlap bound.
pub fn required_overlap(sim: SimFunction, t: f64, x_len: usize, y_len: usize) -> Option<usize> {
    if t <= 0.0 {
        return Some(0);
    }
    let (x, y) = (x_len as f64, y_len as f64);
    let o = match sim {
        SimFunction::Jaccard(_) => t / (1.0 + t) * (x + y),
        SimFunction::Dice(_) => t / 2.0 * (x + y),
        SimFunction::Cosine(_) => t * (x * y).sqrt(),
        SimFunction::Overlap(_) => t * x.min(y),
        _ => return None,
    };
    Some(ceil_mul(o, 1.0).max(1))
}

/// Length of the prefix of `x`'s (globally ordered) token list that must be
/// indexed so that any `y` with `sim(x, y) >= t` shares at least one prefix
/// token with `x`. This is the *index-side* prefix; by symmetry the same
/// formula gives the probe-side prefix.
///
/// The per-record minimal overlap `o_min(x)` (minimized over all admissible
/// partner sizes) is:
/// * Jaccard: `⌈t·|x|⌉`   (partner size >= t·|x|)
/// * Dice:    `⌈t/(2-t)·|x|⌉`
/// * Cosine:  `⌈t²·|x|⌉`
/// * Overlap: `1` (partner can be a single shared token) — the prefix
///   degenerates to the whole token list, i.e. a plain inverted index.
///
/// Prefix length is then `|x| - o_min + 1`, clamped to `[1, |x|]`.
pub fn prefix_len(sim: SimFunction, t: f64, set_len: usize) -> usize {
    if set_len == 0 {
        return 0;
    }
    if t <= 0.0 {
        return set_len;
    }
    let n = set_len as f64;
    let o_min = match sim {
        SimFunction::Jaccard(_) => ceil_mul(t, n),
        SimFunction::Dice(_) => ceil_mul(t / (2.0 - t), n),
        SimFunction::Cosine(_) => ceil_mul(t * t, n),
        SimFunction::Overlap(_) => 1,
        _ => 1,
    }
    .max(1);
    (set_len - o_min.min(set_len) + 1).clamp(1, set_len)
}

/// Whether a predicate over this measure/threshold can be served by prefix
/// and position filters at all. Overlap coefficient degenerates to a full
/// inverted index (still a valid share-a-token filter); other measures get a
/// true prefix.
pub fn prefix_filter_applicable(sim: SimFunction, t: f64) -> bool {
    t > 0.0 && sim.is_set_based()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tokenizer;

    const W: Tokenizer = Tokenizer::Word;

    #[test]
    fn jaccard_length_bounds_match_example6() {
        // Example 6 of the paper: jaccard >= 0.6 with |y| = 10 words gives
        // [6, 16] (10·0.6 .. 10/0.6 floor).
        let (lo, hi) = length_bounds(SimFunction::Jaccard(W), 0.6, 10).unwrap();
        assert_eq!((lo, hi), (6, 16));
    }

    #[test]
    fn dice_and_cosine_bounds() {
        let (lo, hi) = length_bounds(SimFunction::Dice(W), 0.8, 12).unwrap();
        // 0.8/1.2·12 = 8, 1.2/0.8·12 = 18
        assert_eq!((lo, hi), (8, 18));
        let (lo, hi) = length_bounds(SimFunction::Cosine(W), 0.5, 8).unwrap();
        // 0.25·8 = 2, 8/0.25 = 32
        assert_eq!((lo, hi), (2, 32));
    }

    #[test]
    fn overlap_has_no_length_bound() {
        assert_eq!(length_bounds(SimFunction::Overlap(W), 0.9, 10), None);
    }

    #[test]
    fn levenshtein_char_bounds() {
        let (lo, hi) = length_bounds(SimFunction::Levenshtein, 0.8, 10).unwrap();
        assert_eq!((lo, hi), (8, 12));
    }

    #[test]
    fn prefix_len_jaccard() {
        // |x| = 10, t = 0.6 -> o_min = 6 -> prefix = 5.
        assert_eq!(prefix_len(SimFunction::Jaccard(W), 0.6, 10), 5);
        // t = 1.0 -> o_min = |x| -> prefix = 1 (exact-match-like).
        assert_eq!(prefix_len(SimFunction::Jaccard(W), 1.0, 10), 1);
        // Overlap -> whole list.
        assert_eq!(prefix_len(SimFunction::Overlap(W), 0.6, 10), 10);
        assert_eq!(prefix_len(SimFunction::Jaccard(W), 0.6, 0), 0);
    }

    #[test]
    fn required_overlap_values() {
        // Jaccard 0.5, |x|=|y|=6 -> 0.5/1.5·12 = 4.
        assert_eq!(
            required_overlap(SimFunction::Jaccard(W), 0.5, 6, 6),
            Some(4)
        );
        // Dice 0.5, sizes 4,4 -> 0.25·8 = 2.
        assert_eq!(required_overlap(SimFunction::Dice(W), 0.5, 4, 4), Some(2));
        // Overlap 0.75, min=4 -> 3.
        assert_eq!(
            required_overlap(SimFunction::Overlap(W), 0.75, 4, 9),
            Some(3)
        );
        assert_eq!(required_overlap(SimFunction::Levenshtein, 0.5, 4, 4), None);
    }

    /// Brute-force soundness check: the required-overlap bound never exceeds
    /// the actual overlap of any pair satisfying the predicate.
    #[test]
    fn required_overlap_is_necessary() {
        use std::collections::BTreeSet;
        let universe: Vec<String> = (0..8).map(|i| format!("t{i}")).collect();
        let sims = [
            SimFunction::Jaccard(W),
            SimFunction::Dice(W),
            SimFunction::Cosine(W),
            SimFunction::Overlap(W),
        ];
        // Enumerate set pairs over a small universe via bitmasks.
        for xm in 1u32..(1 << 6) {
            for ym in 1u32..(1 << 6) {
                let x: BTreeSet<String> = (0..6)
                    .filter(|i| xm >> i & 1 == 1)
                    .map(|i| universe[i].clone())
                    .collect();
                let y: BTreeSet<String> = (0..6)
                    .filter(|i| ym >> i & 1 == 1)
                    .map(|i| universe[i].clone())
                    .collect();
                let inter = x.intersection(&y).count();
                for sim in sims {
                    for t in [0.3, 0.5, 0.8] {
                        let score = match sim {
                            SimFunction::Jaccard(_) => crate::sets::jaccard(&x, &y),
                            SimFunction::Dice(_) => crate::sets::dice(&x, &y),
                            SimFunction::Cosine(_) => crate::sets::cosine(&x, &y),
                            SimFunction::Overlap(_) => crate::sets::overlap_coefficient(&x, &y),
                            _ => unreachable!(),
                        };
                        if score >= t {
                            let need = required_overlap(sim, t, x.len(), y.len()).unwrap();
                            assert!(
                                inter >= need,
                                "{sim:?} t={t}: |x|={} |y|={} inter={inter} need={need}",
                                x.len(),
                                y.len()
                            );
                        }
                    }
                }
            }
        }
    }
}
