//! Tokenizers used by the set-based similarity measures and by the
//! prefix/position filter indexes.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// How a string attribute value is decomposed into tokens.
///
/// `Word` splits on whitespace after lowercasing and stripping punctuation
/// edges; `QGram(q)` slides a window of `q` characters over the padded,
/// lowercased string. Tokens are *sets* (duplicates removed) as in standard
/// set-similarity-join formulations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tokenizer {
    /// Whitespace-delimited word tokens.
    Word,
    /// Character q-grams (the paper uses q = 3).
    QGram(u8),
}

impl Tokenizer {
    /// Tokenize into a deduplicated, sorted token set.
    pub fn tokenize(self, s: &str) -> BTreeSet<String> {
        match self {
            Tokenizer::Word => word_tokens(s).into_iter().collect(),
            Tokenizer::QGram(q) => qgrams(s, q as usize).into_iter().collect(),
        }
    }

    /// Tokenize preserving order and duplicates (used by TF weighting and by
    /// the hybrid measures that align token sequences).
    pub fn tokenize_seq(self, s: &str) -> Vec<String> {
        match self {
            Tokenizer::Word => word_tokens(s),
            Tokenizer::QGram(q) => qgrams(s, q as usize),
        }
    }

    /// Tokenize into a sorted, deduplicated `Vec<String>` — the same token
    /// set as [`Tokenizer::tokenize`] but in a flat buffer, for profile
    /// building where the strings are immediately interned to ids.
    pub fn tokenize_sorted(self, s: &str) -> Vec<String> {
        let mut toks = self.tokenize_seq(s);
        toks.sort_unstable();
        toks.dedup();
        toks
    }

    /// Suffix used in feature names (`jaccard_word`, `dice_3gram`, ...).
    pub fn suffix(self) -> String {
        match self {
            Tokenizer::Word => "word".into(),
            Tokenizer::QGram(q) => format!("{q}gram"),
        }
    }
}

/// Lowercased word tokens with leading/trailing punctuation stripped.
pub fn word_tokens(s: &str) -> Vec<String> {
    s.split_whitespace()
        .map(|w| {
            w.trim_matches(|c: char| !c.is_alphanumeric())
                .to_lowercase()
        })
        .filter(|w| !w.is_empty())
        .collect()
}

/// Character q-grams of the lowercased string. Strings shorter than `q`
/// yield a single token (the whole string) so short values still index.
pub fn qgrams(s: &str, q: usize) -> Vec<String> {
    let lower = s.to_lowercase();
    let chars: Vec<char> = lower.chars().collect();
    if chars.is_empty() || q == 0 {
        return Vec::new();
    }
    if chars.len() <= q {
        return vec![lower];
    }
    chars.windows(q).map(|w| w.iter().collect()).collect()
}

/// Number of word tokens in a value — the "length in words" that the length
/// filter of Example 6 in the paper indexes.
pub fn word_len(s: &str) -> usize {
    word_tokens(s).len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_tokens_normalize() {
        assert_eq!(
            word_tokens("The  Quick, brown fox!"),
            vec!["the", "quick", "brown", "fox"]
        );
        assert_eq!(word_tokens(""), Vec::<String>::new());
        assert_eq!(word_tokens("...  ,"), Vec::<String>::new());
    }

    #[test]
    fn qgrams_slide() {
        assert_eq!(qgrams("abcd", 3), vec!["abc", "bcd"]);
        assert_eq!(qgrams("ab", 3), vec!["ab"]);
        assert_eq!(qgrams("", 3), Vec::<String>::new());
    }

    #[test]
    fn tokenize_dedups() {
        let t = Tokenizer::Word.tokenize("a b a b c");
        assert_eq!(t.len(), 3);
        let seq = Tokenizer::Word.tokenize_seq("a b a b c");
        assert_eq!(seq.len(), 5);
    }

    #[test]
    fn tokenize_sorted_matches_set() {
        for s in ["a b a b c", "The  Quick, brown fox!", "", "... ,"] {
            for t in [Tokenizer::Word, Tokenizer::QGram(3)] {
                let sorted = t.tokenize_sorted(s);
                let set: Vec<String> = t.tokenize(s).into_iter().collect();
                assert_eq!(sorted, set, "tokenizer {t:?} on {s:?}");
            }
        }
    }

    #[test]
    fn qgram_tokenizer_lowercases() {
        let t = Tokenizer::QGram(3).tokenize("ABC");
        assert!(t.contains("abc"));
    }
}
