//! The token-profile cache: pre-tokenized, interned token-id columns plus
//! a rendered-value cache, shared by every feature evaluated over a pair.
//!
//! Feature-vector generation (`gen_fvs`, Section 8) evaluates tens of
//! `sim(a.x, b.y)` features per candidate pair. Without a cache, each
//! set-based feature re-renders both attribute values and re-tokenizes
//! them into fresh `BTreeSet<String>`s — the same title can be tokenized a
//! dozen times for one pair, and once per pair it participates in. The
//! profile layer instead tokenizes every needed `(attribute, tokenizer)`
//! column **once per tuple**, interning tokens to `u32` ids via a
//! [`TokenDict`] shared across both tables, so per-pair scoring becomes a
//! zero-allocation sorted-slice merge (see the `*_ids` kernels in
//! [`crate::sets`]).
//!
//! Semantics are identical to the string path by construction and proven
//! bit-identical by a property test in `falcon-core`:
//!
//! * missingness is decided on the **rendered string** (empty ⇒ feature is
//!   `NaN`), exactly like `SimFunction::score_str`;
//! * a non-empty string may still tokenize to an *empty* id list
//!   (punctuation-only text under `Tokenizer::Word`), which scores 0.0 —
//!   the same empty-set semantics as the `BTreeSet` kernels.

use crate::tokenize::Tokenizer;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// String → `u32` token interner. Equal token strings get equal ids, so
/// set intersections over ids equal set intersections over strings as long
/// as both sides of a comparison were interned through the *same* dict.
#[derive(Debug, Clone, Default)]
pub struct TokenDict {
    map: HashMap<String, u32>,
    toks: Vec<String>,
}

impl TokenDict {
    /// Fresh empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a token, assigning the next id on first sight.
    pub fn intern(&mut self, tok: &str) -> u32 {
        if let Some(&id) = self.map.get(tok) {
            return id;
        }
        let id = self.toks.len() as u32;
        self.toks.push(tok.to_string());
        self.map.insert(tok.to_string(), id);
        id
    }

    /// Intern an owned token without re-allocating on the hit path.
    pub fn intern_owned(&mut self, tok: String) -> u32 {
        match self.map.entry(tok) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                let id = self.toks.len() as u32;
                self.toks.push(e.key().clone());
                e.insert(id);
                id
            }
        }
    }

    /// The token string behind an id.
    pub fn resolve(&self, id: u32) -> Option<&str> {
        self.toks.get(id as usize).map(String::as_str)
    }

    /// Number of distinct tokens interned.
    pub fn len(&self) -> usize {
        self.toks.len()
    }

    /// True iff no token was interned yet.
    pub fn is_empty(&self) -> bool {
        self.toks.is_empty()
    }
}

/// Key of one pre-tokenized column: `(attribute index, tokenizer)`.
pub type ColumnKey = (usize, Tokenizer);

/// Arena-backed rendered-value column: every string lives back to back
/// in one byte buffer with `u32` offsets — one allocation per column
/// instead of a `String` per tuple, matching the columnar table layout.
#[derive(Debug, Clone)]
pub struct RenderedColumn {
    /// `len + 1` entries; value `i` spans `offsets[i]..offsets[i+1]`.
    offsets: Vec<u32>,
    /// UTF-8 arena.
    bytes: Vec<u8>,
}

impl Default for RenderedColumn {
    fn default() -> Self {
        Self::new()
    }
}

impl RenderedColumn {
    /// Fresh empty column.
    pub fn new() -> Self {
        RenderedColumn {
            offsets: vec![0],
            bytes: Vec::new(),
        }
    }

    /// Append one rendered value.
    pub fn push(&mut self, s: &str) {
        self.bytes.extend_from_slice(s.as_bytes());
        // Rendered columns mirror table columns, which enforce the same
        // u32 arena bound at ingest; saturation here would only follow a
        // table that could not have been built.
        self.offsets
            .push(u32::try_from(self.bytes.len()).unwrap_or(u32::MAX));
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True iff no value was pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at `i`, or `None` past the end.
    pub fn get(&self, i: usize) -> Option<&str> {
        if i >= self.len() {
            return None;
        }
        let span = &self.bytes[self.offsets[i] as usize..self.offsets[i + 1] as usize];
        // Only whole `&str` values enter the arena; spans are valid UTF-8.
        Some(std::str::from_utf8(span).unwrap_or(""))
    }

    /// Estimated memory footprint in bytes.
    pub fn estimated_bytes(&self) -> usize {
        self.bytes.len() + self.offsets.len() * std::mem::size_of::<u32>()
    }
}

impl<S: AsRef<str>> FromIterator<S> for RenderedColumn {
    fn from_iter<T: IntoIterator<Item = S>>(iter: T) -> Self {
        let mut col = RenderedColumn::new();
        for s in iter {
            col.push(s.as_ref());
        }
        col
    }
}

/// Pre-tokenized profile of one table.
///
/// Columns are stored in small ordered `Vec`s and looked up by linear
/// scan: a feature library only ever needs a handful of `(attribute,
/// tokenizer)` combinations, and a scan of ≤ ~10 entries beats hashing in
/// the per-pair hot loop.
#[derive(Debug, Clone, Default)]
pub struct TokenProfile {
    /// `(attr idx, tokenizer)` → per-tuple sorted, deduped token-id lists
    /// (indexed by tuple id).
    columns: Vec<(ColumnKey, Vec<Vec<u32>>)>,
    /// attr idx → per-tuple rendered values (`""` = missing), indexed by
    /// tuple id, arena-backed.
    rendered: Vec<(usize, RenderedColumn)>,
    /// True when every tuple of the table was profiled (no id mask); only
    /// complete profiles may stand in for full-table scans such as the
    /// token-frequency job.
    complete: bool,
    /// Per-tuple coverage for masked (partial) builds; `None` = all tuples
    /// covered. Lookups on uncovered tuples return `None` so callers fall
    /// back to the string path instead of misreading an uncovered tuple as
    /// "empty value / empty token set".
    covered: Option<Vec<bool>>,
}

impl TokenProfile {
    /// Fresh empty profile; `complete` declares whether every tuple of the
    /// table will be covered.
    pub fn new(complete: bool) -> Self {
        Self {
            columns: Vec::new(),
            rendered: Vec::new(),
            complete,
            covered: None,
        }
    }

    /// True when every tuple of the table was profiled.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Declare which tuple ids were actually profiled (for masked builds).
    pub fn set_coverage(&mut self, covered: Vec<bool>) {
        self.covered = Some(covered);
    }

    fn is_covered(&self, id: u32) -> bool {
        match &self.covered {
            None => true,
            Some(c) => c.get(id as usize).copied().unwrap_or(false),
        }
    }

    /// Install a token-id column. Later inserts under the same key replace
    /// the earlier column.
    pub fn insert_column(&mut self, key: ColumnKey, data: Vec<Vec<u32>>) {
        if let Some(slot) = self.columns.iter_mut().find(|(k, _)| *k == key) {
            slot.1 = data;
        } else {
            self.columns.push((key, data));
        }
    }

    /// Install a rendered-value column for one attribute.
    pub fn insert_rendered(&mut self, attr: usize, values: Vec<String>) {
        self.insert_rendered_col(attr, values.iter().collect());
    }

    /// Install an already arena-backed rendered column for one attribute.
    pub fn insert_rendered_col(&mut self, attr: usize, values: RenderedColumn) {
        if let Some(slot) = self.rendered.iter_mut().find(|(a, _)| *a == attr) {
            slot.1 = values;
        } else {
            self.rendered.push((attr, values));
        }
    }

    /// The full token-id column for a key, if profiled.
    pub fn column(&self, key: ColumnKey) -> Option<&[Vec<u32>]> {
        self.columns
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, c)| c.as_slice())
    }

    /// Sorted token ids of one tuple's attribute under a tokenizer, if that
    /// column and tuple were profiled.
    pub fn tokens(&self, attr: usize, tokenizer: Tokenizer, id: u32) -> Option<&[u32]> {
        if !self.is_covered(id) {
            return None;
        }
        self.column((attr, tokenizer))
            .and_then(|c| c.get(id as usize))
            .map(Vec::as_slice)
    }

    /// Cached rendered value of one tuple's attribute, if that attribute
    /// and tuple were profiled (`""` = missing value).
    pub fn rendered(&self, attr: usize, id: u32) -> Option<&str> {
        if !self.is_covered(id) {
            return None;
        }
        self.rendered
            .iter()
            .find(|(a, _)| *a == attr)
            .and_then(|(_, c)| c.get(id as usize))
    }

    /// Number of profiled token columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Estimated memory footprint in bytes.
    pub fn estimated_bytes(&self) -> usize {
        let cols: usize = self
            .columns
            .iter()
            .map(|(_, c)| c.iter().map(|ids| 24 + ids.len() * 4).sum::<usize>())
            .sum();
        let rend: usize = self.rendered.iter().map(|(_, c)| c.estimated_bytes()).sum();
        cols + rend
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dict_interns_stably() {
        let mut d = TokenDict::new();
        let a = d.intern("alpha");
        let b = d.intern_owned("beta".to_string());
        assert_ne!(a, b);
        assert_eq!(d.intern("alpha"), a);
        assert_eq!(d.intern_owned("beta".to_string()), b);
        assert_eq!(d.resolve(a), Some("alpha"));
        assert_eq!(d.resolve(b), Some("beta"));
        assert_eq!(d.len(), 2);
        assert_eq!(d.resolve(99), None);
    }

    #[test]
    fn profile_lookups() {
        let mut p = TokenProfile::new(true);
        assert!(p.is_complete());
        p.insert_column((0, Tokenizer::Word), vec![vec![1, 3], vec![]]);
        p.insert_rendered(0, vec!["a b".into(), String::new()]);
        assert_eq!(p.tokens(0, Tokenizer::Word, 0), Some(&[1u32, 3][..]));
        assert_eq!(p.tokens(0, Tokenizer::Word, 1), Some(&[][..]));
        assert_eq!(p.tokens(0, Tokenizer::QGram(3), 0), None);
        assert_eq!(p.tokens(1, Tokenizer::Word, 0), None);
        assert_eq!(p.rendered(0, 0), Some("a b"));
        assert_eq!(p.rendered(0, 1), Some(""));
        assert_eq!(p.rendered(1, 0), None);
        assert_eq!(p.column_count(), 1);
        assert!(p.estimated_bytes() > 0);
    }

    #[test]
    fn coverage_masks_lookups() {
        let mut p = TokenProfile::new(false);
        p.insert_column((0, Tokenizer::Word), vec![vec![1], vec![2]]);
        p.insert_rendered(0, vec!["a".into(), "b".into()]);
        p.set_coverage(vec![true, false]);
        assert_eq!(p.tokens(0, Tokenizer::Word, 0), Some(&[1u32][..]));
        assert_eq!(p.tokens(0, Tokenizer::Word, 1), None);
        assert_eq!(p.rendered(0, 0), Some("a"));
        assert_eq!(p.rendered(0, 1), None);
        // Out-of-range ids are uncovered, not a panic.
        assert_eq!(p.tokens(0, Tokenizer::Word, 9), None);
    }

    #[test]
    fn insert_replaces_existing() {
        let mut p = TokenProfile::new(false);
        p.insert_column((0, Tokenizer::Word), vec![vec![1]]);
        p.insert_column((0, Tokenizer::Word), vec![vec![2]]);
        assert_eq!(p.tokens(0, Tokenizer::Word, 0), Some(&[2u32][..]));
        assert_eq!(p.column_count(), 1);
        p.insert_rendered(0, vec!["x".into()]);
        p.insert_rendered(0, vec!["y".into()]);
        assert_eq!(p.rendered(0, 0), Some("y"));
    }
}
