//! Numeric distance measures for numeric attributes (Figure 5, last row).

/// Absolute difference `|a - b|`. Smaller means closer; unbounded above.
pub fn abs_diff(a: f64, b: f64) -> f64 {
    (a - b).abs()
}

/// Relative difference `|a - b| / max(|a|, |b|)` in `[0, ∞)`; `0` when both
/// values are zero. Smaller means closer.
pub fn rel_diff(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs());
    if denom == 0.0 {
        0.0
    } else {
        (a - b).abs() / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_diff_basics() {
        assert_eq!(abs_diff(10.0, 4.0), 6.0);
        assert_eq!(abs_diff(4.0, 10.0), 6.0);
        assert_eq!(abs_diff(-3.0, 3.0), 6.0);
        assert_eq!(abs_diff(5.0, 5.0), 0.0);
    }

    #[test]
    fn rel_diff_basics() {
        assert_eq!(rel_diff(10.0, 5.0), 0.5);
        assert_eq!(rel_diff(5.0, 10.0), 0.5);
        assert_eq!(rel_diff(0.0, 0.0), 0.0);
        assert_eq!(rel_diff(0.0, 7.0), 1.0);
        assert_eq!(rel_diff(2.0, 2.0), 0.0);
    }
}
