//! Property-based tests for the similarity substrate: bounds, symmetry,
//! identity, and — critically for blocking correctness — soundness of the
//! filter arithmetic in `prefix.rs`.

use falcon_textsim::{prefix, sets, SimContext, SimFunction, Tokenizer};
use proptest::prelude::*;

fn word_string() -> impl Strategy<Value = String> {
    proptest::collection::vec("[a-e]{1,4}", 0..8).prop_map(|v| v.join(" "))
}

fn all_sims() -> Vec<SimFunction> {
    use SimFunction::*;
    vec![
        ExactMatch,
        Jaccard(Tokenizer::Word),
        Jaccard(Tokenizer::QGram(3)),
        Dice(Tokenizer::Word),
        Overlap(Tokenizer::Word),
        Cosine(Tokenizer::Word),
        Levenshtein,
        Jaro,
        JaroWinkler,
        MongeElkan,
        NeedlemanWunsch,
        SmithWaterman,
        SmithWatermanGotoh,
    ]
}

proptest! {
    /// All string similarity measures are bounded in [0, 1].
    #[test]
    fn scores_bounded(a in word_string(), b in word_string()) {
        let ctx = SimContext::empty();
        for sim in all_sims() {
            if let Some(s) = sim.score_str(&a, &b, &ctx) {
                prop_assert!((0.0..=1.0).contains(&s), "{:?} -> {}", sim, s);
            }
        }
    }

    /// All string similarity measures are symmetric.
    #[test]
    fn scores_symmetric(a in word_string(), b in word_string()) {
        let ctx = SimContext::empty();
        for sim in all_sims() {
            let ab = sim.score_str(&a, &b, &ctx);
            let ba = sim.score_str(&b, &a, &ctx);
            match (ab, ba) {
                (Some(x), Some(y)) => prop_assert!((x - y).abs() < 1e-9, "{:?}: {} vs {}", sim, x, y),
                (None, None) => {}
                _ => prop_assert!(false, "{:?}: asymmetric None", sim),
            }
        }
    }

    /// Self-similarity is 1 for every similarity-oriented measure.
    #[test]
    fn self_similarity_is_one(a in word_string().prop_filter("non-empty", |s| !s.trim().is_empty())) {
        let ctx = SimContext::empty();
        for sim in all_sims() {
            if let Some(s) = sim.score_str(&a, &a, &ctx) {
                prop_assert!((s - 1.0).abs() < 1e-9, "{:?}({:?}) = {}", sim, a, s);
            }
        }
    }

    /// Length bounds are sound: if sim(x, y) >= t then |x| is inside the
    /// bounds computed from |y|.
    #[test]
    fn length_bounds_sound(a in word_string(), b in word_string(), t in 0.05f64..1.0) {
        let w = Tokenizer::Word;
        for sim in [SimFunction::Jaccard(w), SimFunction::Dice(w), SimFunction::Cosine(w)] {
            let x = w.tokenize(&a);
            let y = w.tokenize(&b);
            if x.is_empty() || y.is_empty() { continue; }
            let score = match sim {
                SimFunction::Jaccard(_) => sets::jaccard(&x, &y),
                SimFunction::Dice(_) => sets::dice(&x, &y),
                SimFunction::Cosine(_) => sets::cosine(&x, &y),
                _ => unreachable!(),
            };
            if score >= t {
                if let Some((lo, hi)) = prefix::length_bounds(sim, t, y.len()) {
                    prop_assert!(x.len() >= lo && x.len() <= hi,
                        "{:?} t={} |x|={} not in [{},{}] (score {})", sim, t, x.len(), lo, hi, score);
                }
            }
        }
    }

    /// Levenshtein character-length bounds are sound.
    #[test]
    fn levenshtein_length_bounds_sound(a in "[a-d]{0,12}", b in "[a-d]{0,12}", t in 0.05f64..1.0) {
        if a.is_empty() || b.is_empty() { return Ok(()); }
        let s = falcon_textsim::edit::levenshtein_sim(&a, &b);
        if s >= t {
            if let Some((lo, hi)) = prefix::length_bounds(SimFunction::Levenshtein, t, b.chars().count()) {
                let n = a.chars().count();
                prop_assert!(n >= lo && n <= hi, "len {} not in [{},{}], sim {}", n, lo, hi, s);
            }
        }
    }

    /// Prefix filter soundness: if sim(x, y) >= t, the t-prefixes of x and y
    /// under a shared global token order must intersect.
    #[test]
    fn prefix_filter_sound(a in word_string(), b in word_string(), t in 0.05f64..=1.0) {
        let w = Tokenizer::Word;
        let x = w.tokenize(&a);
        let y = w.tokenize(&b);
        if x.is_empty() || y.is_empty() { return Ok(()); }
        // Global order: lexicographic (any fixed total order is valid).
        let mut xs: Vec<&String> = x.iter().collect();
        let mut ys: Vec<&String> = y.iter().collect();
        xs.sort();
        ys.sort();
        for sim in [SimFunction::Jaccard(w), SimFunction::Dice(w), SimFunction::Cosine(w), SimFunction::Overlap(w)] {
            let score = match sim {
                SimFunction::Jaccard(_) => sets::jaccard(&x, &y),
                SimFunction::Dice(_) => sets::dice(&x, &y),
                SimFunction::Cosine(_) => sets::cosine(&x, &y),
                SimFunction::Overlap(_) => sets::overlap_coefficient(&x, &y),
                _ => unreachable!(),
            };
            if score >= t {
                let px = prefix::prefix_len(sim, t, xs.len());
                let py = prefix::prefix_len(sim, t, ys.len());
                let shared = xs[..px].iter().any(|tok| ys[..py].contains(tok));
                prop_assert!(shared,
                    "{:?} t={} score={} prefixes {:?} / {:?} disjoint", sim, t, score, &xs[..px], &ys[..py]);
            }
        }
    }

    /// Required-overlap is a true lower bound on the actual intersection.
    #[test]
    fn required_overlap_sound(a in word_string(), b in word_string(), t in 0.05f64..=1.0) {
        let w = Tokenizer::Word;
        let x = w.tokenize(&a);
        let y = w.tokenize(&b);
        if x.is_empty() || y.is_empty() { return Ok(()); }
        let inter = x.intersection(&y).count();
        for sim in [SimFunction::Jaccard(w), SimFunction::Dice(w), SimFunction::Cosine(w), SimFunction::Overlap(w)] {
            let score = match sim {
                SimFunction::Jaccard(_) => sets::jaccard(&x, &y),
                SimFunction::Dice(_) => sets::dice(&x, &y),
                SimFunction::Cosine(_) => sets::cosine(&x, &y),
                SimFunction::Overlap(_) => sets::overlap_coefficient(&x, &y),
                _ => unreachable!(),
            };
            if score >= t {
                let need = prefix::required_overlap(sim, t, x.len(), y.len()).unwrap();
                prop_assert!(inter >= need, "{:?} t={}: inter {} < need {}", sim, t, inter, need);
            }
        }
    }

    /// Levenshtein distance satisfies the triangle inequality.
    #[test]
    fn levenshtein_triangle(a in "[a-c]{0,8}", b in "[a-c]{0,8}", c in "[a-c]{0,8}") {
        use falcon_textsim::edit::levenshtein;
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }
}
