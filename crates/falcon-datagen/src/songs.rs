//! The Songs dataset: deduplicating a million-song catalog against itself
//! (1M × 1M tuples, 1.29M matches at full scale). Duplicate *clusters*
//! (the same song on multiple albums) produce more matches than tuples,
//! and remix/live "versions" of the same title are hard negatives — the
//! paper's crowd instructions (Figure 8) call these out explicitly.

use crate::corrupt::{Corruptor, Dirtiness};
use crate::entity::{person_name, pick, sentence, BAND_WORDS, SONG_WORDS};
use crate::EmDataset;
use falcon_table::{AttrType, Schema, Table, Value};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Full-scale table size from Table 1 (each side).
pub const FULL_SIZE: usize = 1_000_000;

/// Fraction of clusters that are "popular" (2 copies on each side, giving
/// 4 matches from 4 tuples). Chosen so matches/|A| ≈ 1.29 as in Table 1:
/// `(1 + 3p) / (1 + p) = 1.292` ⇒ `p ≈ 0.171`.
const POPULAR: f64 = 0.171;

#[derive(Clone)]
struct Song {
    title: String,
    release: String,
    artist: String,
    duration: f64,
    year: f64,
}

fn make_song(rng: &mut SmallRng) -> Song {
    let title = {
        let n = rng.gen_range(1..5);
        sentence(rng, SONG_WORDS, n)
    };
    let release = {
        let n = rng.gen_range(1..4);
        sentence(rng, SONG_WORDS, n)
    };
    let artist = if rng.gen_bool(0.4) {
        format!("the {}", pick(rng, BAND_WORDS))
    } else {
        person_name(rng)
    };
    Song {
        title,
        release,
        artist,
        duration: rng.gen_range(120.0_f64..420.0).round(),
        year: rng.gen_range(1960..2011) as f64,
    }
}

/// Same song on a different album (a true duplicate).
fn on_other_album(rng: &mut SmallRng, s: &Song) -> Song {
    let mut v = s.clone();
    v.release = {
        let n = rng.gen_range(1..4);
        sentence(rng, SONG_WORDS, n)
    };
    v
}

/// A different *version* of the song — remix/live/instrumental. Same
/// artist, annotated title, different year: a hard NEGATIVE.
fn version_of(rng: &mut SmallRng, s: &Song) -> Song {
    let tag = ["remix", "live", "instrumental", "acoustic"][rng.gen_range(0..4)];
    let mut v = s.clone();
    v.title = format!("{} ({tag})", s.title);
    v.year = (s.year + rng.gen_range(1..15) as f64).min(2010.0);
    v.duration = (s.duration + rng.gen_range(-30.0..60.0)).round();
    v
}

fn schema() -> Schema {
    Schema::new([
        ("title", AttrType::Str),
        ("release", AttrType::Str),
        ("artist_name", AttrType::Str),
        ("duration", AttrType::Num),
        ("year", AttrType::Num),
    ])
}

fn dirty_row(rng: &mut SmallRng, c: &Corruptor, s: &Song) -> Vec<Value> {
    vec![
        c.string_present(rng, &s.title),
        c.string(rng, &s.release),
        c.string(rng, &s.artist),
        c.number(rng, s.duration),
        c.number(rng, s.year),
    ]
}

/// Generate Songs at `scale` (1.0 = paper sizes).
pub fn generate(scale: f64, seed: u64) -> EmDataset {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x534f4e47);
    let size = ((FULL_SIZE as f64 * scale).round() as usize).max(16);
    let corruptor = Corruptor::new(Dirtiness::light());

    // Build clusters until both sides are full. Popular clusters put two
    // variants on each side; normal clusters one on each.
    let mut a_rows: Vec<(Vec<Value>, usize)> = Vec::with_capacity(size); // (row, cluster)
    let mut b_rows: Vec<(Vec<Value>, usize)> = Vec::with_capacity(size);
    let mut cluster = 0usize;
    while a_rows.len() < size && b_rows.len() < size {
        let song = make_song(&mut rng);
        let popular = rng.gen_bool(POPULAR) && a_rows.len() + 2 <= size && b_rows.len() + 2 <= size;
        let copies = if popular { 2 } else { 1 };
        for _ in 0..copies {
            let v = on_other_album(&mut rng, &song);
            a_rows.push((dirty_row(&mut rng, &corruptor, &v), cluster));
        }
        for _ in 0..copies {
            let v = on_other_album(&mut rng, &song);
            b_rows.push((dirty_row(&mut rng, &corruptor, &v), cluster));
        }
        // Occasionally add a non-matching "version" to one side.
        if rng.gen_bool(0.08) && a_rows.len() < size && b_rows.len() < size {
            let v = version_of(&mut rng, &song);
            cluster += 1; // its own cluster: never matches the original
            if rng.gen_bool(0.5) {
                a_rows.push((dirty_row(&mut rng, &corruptor, &v), cluster));
            } else {
                b_rows.push((dirty_row(&mut rng, &corruptor, &v), cluster));
            }
        }
        cluster += 1;
    }
    // Top up whichever side is short with fresh singletons.
    while a_rows.len() < size {
        let s = make_song(&mut rng);
        a_rows.push((dirty_row(&mut rng, &corruptor, &s), cluster));
        cluster += 1;
    }
    while b_rows.len() < size {
        let s = make_song(&mut rng);
        b_rows.push((dirty_row(&mut rng, &corruptor, &s), cluster));
        cluster += 1;
    }
    a_rows.shuffle(&mut rng);
    b_rows.shuffle(&mut rng);

    // Truth: all cross pairs within a cluster.
    let mut by_cluster: std::collections::HashMap<usize, (Vec<u32>, Vec<u32>)> =
        std::collections::HashMap::new();
    for (i, (_, c)) in a_rows.iter().enumerate() {
        by_cluster.entry(*c).or_default().0.push(i as u32);
    }
    for (i, (_, c)) in b_rows.iter().enumerate() {
        by_cluster.entry(*c).or_default().1.push(i as u32);
    }
    let mut truth = Vec::new();
    for (_, (aids, bids)) in by_cluster {
        for &a in &aids {
            for &b in &bids {
                truth.push((a, b));
            }
        }
    }
    truth.sort_unstable();

    let a = Table::new("songs_a", schema(), a_rows.into_iter().map(|(r, _)| r));
    let b = Table::new("songs_b", schema(), b_rows.into_iter().map(|(r, _)| r));
    EmDataset {
        name: "songs".into(),
        a,
        b,
        truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_ratio_near_paper() {
        let d = generate(0.01, 4);
        let ratio = d.truth.len() as f64 / d.a.len() as f64;
        // Paper: 1.292. Allow generator slack.
        assert!((1.0..1.6).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn sizes_equal_both_sides() {
        let d = generate(0.005, 5);
        assert_eq!(d.a.len(), d.b.len());
    }

    #[test]
    fn versions_are_not_matches() {
        let d = generate(0.01, 6);
        let tidx = d.a.schema().index_of("title").unwrap();
        // No truth pair may join a "(remix)"-style title with a clean one
        // of different annotation.
        for (aid, bid) in d.truth.iter().take(500) {
            let at = d.a.get(*aid).unwrap().value(tidx).render();
            let bt = d.b.get(*bid).unwrap().value(tidx).render();
            let a_tagged = at.contains('(');
            let b_tagged = bt.contains('(');
            assert_eq!(
                a_tagged, b_tagged,
                "version mixed into cluster: {at:?} vs {bt:?}"
            );
        }
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(0.005, 7).truth, generate(0.005, 7).truth);
    }
}
