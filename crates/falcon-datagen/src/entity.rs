//! Vocabulary pools and base-entity builders shared by the generators.

use rand::Rng;

/// Electronics brands (Products).
pub const BRANDS: &[&str] = &[
    "sony",
    "samsung",
    "panasonic",
    "toshiba",
    "philips",
    "canon",
    "nikon",
    "garmin",
    "logitech",
    "netgear",
    "linksys",
    "belkin",
    "sandisk",
    "kingston",
    "seagate",
    "lacie",
    "asus",
    "acer",
    "lenovo",
    "dell",
    "hp",
    "epson",
    "brother",
    "jvc",
    "pioneer",
    "kenwood",
    "yamaha",
    "olympus",
    "casio",
    "vtech",
];

/// Product nouns.
pub const PRODUCT_NOUNS: &[&str] = &[
    "camera",
    "camcorder",
    "laptop",
    "monitor",
    "keyboard",
    "mouse",
    "router",
    "speaker",
    "headphones",
    "printer",
    "scanner",
    "projector",
    "television",
    "receiver",
    "microphone",
    "tablet",
    "charger",
    "battery",
    "adapter",
    "drive",
    "player",
    "radio",
    "watch",
    "phone",
];

/// Product adjectives / qualifiers.
pub const PRODUCT_ADJECTIVES: &[&str] = &[
    "wireless",
    "digital",
    "portable",
    "compact",
    "professional",
    "ultra",
    "premium",
    "gaming",
    "bluetooth",
    "optical",
    "hd",
    "4k",
    "stereo",
    "noise-canceling",
    "waterproof",
    "rechargeable",
    "ergonomic",
    "slim",
    "mini",
    "dual",
];

/// Description filler words for long-string attributes.
pub const FILLER: &[&str] = &[
    "features",
    "includes",
    "designed",
    "high",
    "quality",
    "performance",
    "easy",
    "use",
    "perfect",
    "ideal",
    "home",
    "office",
    "travel",
    "advanced",
    "technology",
    "battery",
    "life",
    "lightweight",
    "durable",
    "warranty",
    "support",
    "connectivity",
    "resolution",
    "display",
    "sound",
    "powerful",
    "fast",
    "reliable",
    "comfortable",
    "stylish",
];

/// Song title words.
pub const SONG_WORDS: &[&str] = &[
    "love",
    "night",
    "heart",
    "dance",
    "fire",
    "rain",
    "dream",
    "blue",
    "summer",
    "road",
    "light",
    "shadow",
    "river",
    "moon",
    "golden",
    "broken",
    "wild",
    "sweet",
    "lonely",
    "forever",
    "tonight",
    "yesterday",
    "morning",
    "midnight",
    "angel",
    "crazy",
    "falling",
    "running",
    "whisper",
    "thunder",
    "silver",
    "velvet",
    "echo",
    "stone",
    "glass",
    "paper",
    "ocean",
];

/// Artist first names.
pub const ARTIST_FIRST: &[&str] = &[
    "john", "david", "maria", "sarah", "michael", "emma", "james", "linda", "robert", "nina",
    "carlos", "sofia", "peter", "anna", "luis", "grace", "tony", "ella", "frank", "ruby",
];

/// Artist last names / band words.
pub const ARTIST_LAST: &[&str] = &[
    "smith", "johnson", "garcia", "brown", "davis", "miller", "wilson", "moore", "taylor",
    "anderson", "thomas", "jackson", "white", "harris", "martin", "thompson", "young", "king",
    "wright", "lopez",
];

/// Band prefixes (for "the `<word>`s" style artists).
pub const BAND_WORDS: &[&str] = &[
    "rockets",
    "shadows",
    "strangers",
    "wanderers",
    "travelers",
    "dreamers",
    "ramblers",
    "drifters",
    "vikings",
    "pilots",
    "monks",
    "pirates",
    "foxes",
    "wolves",
    "ravens",
];

/// Research topic words (Citations titles).
pub const TOPIC_WORDS: &[&str] = &[
    "efficient",
    "scalable",
    "distributed",
    "parallel",
    "adaptive",
    "incremental",
    "approximate",
    "optimal",
    "robust",
    "learning",
    "query",
    "index",
    "join",
    "matching",
    "clustering",
    "classification",
    "optimization",
    "estimation",
    "processing",
    "analysis",
    "mining",
    "detection",
    "integration",
    "cleaning",
    "blocking",
    "entity",
    "graph",
    "stream",
    "database",
    "crowdsourcing",
    "sampling",
    "caching",
    "scheduling",
    "partitioning",
    "compression",
];

/// Journal / venue names (Citations).
pub const JOURNALS: &[(&str, &str)] = &[
    ("proceedings of the vldb endowment", "pvldb"),
    ("acm transactions on database systems", "tods"),
    (
        "ieee transactions on knowledge and data engineering",
        "tkde",
    ),
    ("international conference on management of data", "sigmod"),
    ("international conference on very large data bases", "vldb"),
    ("international conference on data engineering", "icde"),
    ("journal of machine learning research", "jmlr"),
    ("knowledge and information systems", "kais"),
    ("information systems", "is"),
    ("data mining and knowledge discovery", "dmkd"),
];

/// Month names.
pub const MONTHS: &[&str] = &[
    "january",
    "february",
    "march",
    "april",
    "may",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
];

/// Pick a random element of a slice.
pub fn pick<'a, T: ?Sized>(rng: &mut impl Rng, pool: &'a [&'a T]) -> &'a T {
    pool[rng.gen_range(0..pool.len())]
}

/// Random sentence of `n` words from a pool.
pub fn sentence(rng: &mut impl Rng, pool: &[&str], n: usize) -> String {
    (0..n)
        .map(|_| pick(rng, pool))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Random alphanumeric model number like "dsc-w830".
pub fn model_number(rng: &mut impl Rng) -> String {
    let letters: String = (0..rng.gen_range(2..4))
        .map(|_| (b'a' + rng.gen_range(0..26)) as char)
        .collect();
    format!(
        "{}-{}{}",
        letters,
        rng.gen_range(1..10),
        rng.gen_range(100..1000)
    )
}

/// Random person name "first last".
pub fn person_name(rng: &mut impl Rng) -> String {
    format!("{} {}", pick(rng, ARTIST_FIRST), pick(rng, ARTIST_LAST))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn sentence_has_n_words() {
        let mut rng = SmallRng::seed_from_u64(1);
        let s = sentence(&mut rng, SONG_WORDS, 4);
        assert_eq!(s.split_whitespace().count(), 4);
    }

    #[test]
    fn model_number_shape() {
        let mut rng = SmallRng::seed_from_u64(2);
        let m = model_number(&mut rng);
        assert!(m.contains('-'));
        assert!(m.len() >= 6);
    }

    #[test]
    fn deterministic_given_seed() {
        let gen = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            (0..5).map(|_| person_name(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }
}
