//! Synthetic dataset generators standing in for the paper's three
//! real-world datasets (Table 1 / Figure 7):
//!
//! | Dataset   | Table A   | Table B   | Matches  | Character |
//! |-----------|-----------|-----------|----------|-----------|
//! | Products  | 2,554     | 22,074    | 1,154    | hard: dirty titles, shared brands/models |
//! | Songs     | 1,000,000 | 1,000,000 | 1,292,023| duplicate clusters, near-duplicate "versions" |
//! | Citations | 1,823,978 | 2,512,927 | 558,787  | very dirty: abbreviations, missing fields |
//!
//! A fourth generator, [`drugs`], models the Section 11.1 in-house
//! deployment (453K × 451K drug descriptions with cross-system format
//! drift).
//!
//! The generators are **schema faithful** (Figure 7 attribute sets), emit
//! exact ground truth, and expose a `scale` knob so the benchmark harness
//! can run the paper's experiments at laptop-friendly sizes while keeping
//! the matched/unmatched structure, attribute characteristics and
//! dirtiness that drive every algorithm under study. Citations is
//! deliberately generated so *key-based blocking has poor recall* (the
//! paper reports 38.8%) while rule-based blocking keeps nearly all
//! matches.

pub mod citations;
pub mod corrupt;
pub mod drugs;
pub mod entity;
pub mod products;
pub mod songs;

use falcon_table::{IdPair, Table};

pub use corrupt::{Corruptor, Dirtiness};

/// A complete EM task instance: two tables plus exact ground truth.
#[derive(Debug, Clone)]
pub struct EmDataset {
    /// Dataset name ("products", "songs", "citations").
    pub name: String,
    /// Table A (by convention the smaller table).
    pub a: Table,
    /// Table B.
    pub b: Table,
    /// All true matching pairs `(a_id, b_id)`.
    pub truth: Vec<IdPair>,
}

impl EmDataset {
    /// Recall of a candidate pair set against the ground truth: the
    /// fraction of true matches present in `candidates` (the blocking
    /// quality metric of Sections 3.2 / 11.4).
    pub fn recall_of(&self, candidates: &std::collections::HashSet<IdPair>) -> f64 {
        if self.truth.is_empty() {
            return 1.0;
        }
        let hit = self
            .truth
            .iter()
            .filter(|p| candidates.contains(*p))
            .count();
        hit as f64 / self.truth.len() as f64
    }

    /// Sub-dataset with only the first `frac` of each table, keeping only
    /// ground-truth pairs that survive (the Figure 10 size sweep).
    pub fn fraction(&self, frac: f64) -> EmDataset {
        let na = (self.a.len() as f64 * frac).round() as usize;
        let nb = (self.b.len() as f64 * frac).round() as usize;
        let truth = self
            .truth
            .iter()
            .copied()
            .filter(|(a, b)| (*a as usize) < na && (*b as usize) < nb)
            .collect();
        EmDataset {
            name: format!("{}@{:.0}%", self.name, frac * 100.0),
            a: self.a.head(na),
            b: self.b.head(nb),
            truth,
        }
    }
}

/// Generate one of the three datasets by name at a given scale.
///
/// `scale = 1.0` produces the paper's full sizes (millions of tuples for
/// Songs/Citations — only do that with time to spare); the benchmark
/// default is 1/100-ish.
pub fn generate(name: &str, scale: f64, seed: u64) -> EmDataset {
    match name {
        "products" => products::generate(scale, seed),
        "songs" => songs::generate(scale, seed),
        "citations" => citations::generate(scale, seed),
        "drugs" => drugs::generate(scale, seed),
        other => panic!("unknown dataset {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn recall_of_counts_hits() {
        let d = products::generate(0.02, 1);
        let all: HashSet<IdPair> = d.truth.iter().copied().collect();
        assert_eq!(d.recall_of(&all), 1.0);
        assert_eq!(d.recall_of(&HashSet::new()), 0.0);
    }

    #[test]
    fn fraction_shrinks_consistently() {
        let d = songs::generate(0.005, 2);
        let h = d.fraction(0.5);
        assert!(h.a.len() <= d.a.len() / 2 + 1);
        for (a, b) in &h.truth {
            assert!((*a as usize) < h.a.len());
            assert!((*b as usize) < h.b.len());
        }
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_dataset_panics() {
        generate("nope", 1.0, 0);
    }
}
