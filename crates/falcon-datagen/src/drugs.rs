//! The drug-description matching workload of Section 11.1: two hospital
//! systems' medication tables (453K × 451K at deployment scale, 4.3M
//! matches). Drug strings are highly structured but formatted differently
//! across systems — full salt names vs abbreviations ("hydrochloride" vs
//! "hcl"), fused vs spaced dosages ("500 mg" vs "500mg"), form synonyms
//! ("tablet" vs "tab") — the regime where learned similarity rules shine
//! and privacy forces an in-house expert crowd.

use crate::corrupt::{Corruptor, Dirtiness};
use crate::entity::pick;
use crate::EmDataset;
use falcon_table::{AttrType, Schema, Table, Value};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Deployment-scale |A| from Section 11.1.
pub const FULL_A: usize = 453_000;
/// Deployment-scale |B|.
pub const FULL_B: usize = 451_000;

/// Generic drug name stems.
const STEMS: &[&str] = &[
    "metformin",
    "lisinopril",
    "atorvastatin",
    "amlodipine",
    "omeprazole",
    "losartan",
    "gabapentin",
    "sertraline",
    "levothyroxine",
    "azithromycin",
    "amoxicillin",
    "prednisone",
    "tramadol",
    "ibuprofen",
    "acetaminophen",
    "warfarin",
    "clopidogrel",
    "furosemide",
    "pantoprazole",
    "citalopram",
    "montelukast",
    "rosuvastatin",
    "escitalopram",
    "duloxetine",
];

/// Salt names with their common abbreviations.
const SALTS: &[(&str, &str)] = &[
    ("hydrochloride", "hcl"),
    ("sodium", "na"),
    ("potassium", "k"),
    ("sulfate", "so4"),
    ("calcium", "ca"),
    ("tartrate", "tart"),
];

/// Dose strengths in mg.
const DOSES: &[u32] = &[
    5, 10, 20, 25, 40, 50, 75, 100, 150, 200, 250, 300, 500, 750, 850, 1000,
];

/// Dosage forms with their abbreviations.
const FORMS: &[(&str, &str)] = &[
    ("tablet", "tab"),
    ("capsule", "cap"),
    ("solution", "sol"),
    ("injection", "inj"),
    ("suspension", "susp"),
    ("cream", "crm"),
];

/// Routes of administration.
const ROUTES: &[&str] = &[
    "oral",
    "intravenous",
    "topical",
    "subcutaneous",
    "ophthalmic",
];

#[derive(Clone)]
struct Drug {
    stem: String,
    salt: Option<usize>,
    dose_mg: u32,
    form: usize,
    route: String,
    ndc: String,
}

fn make_drug(rng: &mut SmallRng) -> Drug {
    Drug {
        stem: pick(rng, STEMS).to_string(),
        salt: rng.gen_bool(0.6).then(|| rng.gen_range(0..SALTS.len())),
        dose_mg: DOSES[rng.gen_range(0..DOSES.len())],
        form: rng.gen_range(0..FORMS.len()),
        route: pick(rng, ROUTES).to_string(),
        ndc: format!(
            "{:05}-{:04}-{:02}",
            rng.gen_range(10000..100000u32),
            rng.gen_range(0..10000u32),
            rng.gen_range(0..100u32)
        ),
    }
}

fn schema() -> Schema {
    Schema::new([
        ("description", AttrType::Str),
        ("ndc", AttrType::Str),
        ("strength_mg", AttrType::Num),
        ("route", AttrType::Str),
    ])
}

/// System-A style: long form, spaced dose, full salt names.
fn render_a(rng: &mut SmallRng, c: &Corruptor, d: &Drug) -> Vec<Value> {
    let salt = d.salt.map_or(String::new(), |i| format!(" {}", SALTS[i].0));
    let descr = format!("{}{} {} mg {}", d.stem, salt, d.dose_mg, FORMS[d.form].0);
    vec![
        c.string_present(rng, &descr),
        if rng.gen_bool(0.85) {
            Value::str(d.ndc.clone())
        } else {
            Value::Null
        },
        Value::num(f64::from(d.dose_mg)),
        Value::str(d.route.clone()),
    ]
}

/// System-B style: abbreviated salt/form, fused dose, NDC often absent or
/// reformatted.
fn render_b(rng: &mut SmallRng, c: &Corruptor, d: &Drug) -> Vec<Value> {
    let salt = d.salt.map_or(String::new(), |i| format!(" {}", SALTS[i].1));
    let descr = format!("{}{} {}mg {}", d.stem, salt, d.dose_mg, FORMS[d.form].1);
    let ndc = if rng.gen_bool(0.5) {
        Value::str(d.ndc.replace('-', ""))
    } else if rng.gen_bool(0.6) {
        Value::str(d.ndc.clone())
    } else {
        Value::Null
    };
    vec![
        c.string_present(rng, &descr),
        ndc,
        c.number(rng, f64::from(d.dose_mg)),
        Value::str(d.route.clone()),
    ]
}

/// Generate the drugs dataset at `scale` (1.0 = deployment sizes). About
/// 60% of `A` has a match in `B`.
pub fn generate(scale: f64, seed: u64) -> EmDataset {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x44525547);
    let a_size = ((FULL_A as f64 * scale).round() as usize).max(12);
    let b_size = ((FULL_B as f64 * scale).round() as usize).max(12);
    let matches = (a_size * 6 / 10).min(b_size);
    let c = Corruptor::new(Dirtiness::light());

    let mut a_rows: Vec<(Vec<Value>, Option<usize>)> = Vec::with_capacity(a_size);
    let mut b_rows: Vec<Vec<Value>> = Vec::with_capacity(b_size);
    for m in 0..matches {
        let d = make_drug(&mut rng);
        a_rows.push((render_a(&mut rng, &c, &d), Some(m)));
        b_rows.push(render_b(&mut rng, &c, &d));
    }
    while a_rows.len() < a_size {
        let d = make_drug(&mut rng);
        a_rows.push((render_a(&mut rng, &c, &d), None));
    }
    while b_rows.len() < b_size {
        let d = make_drug(&mut rng);
        b_rows.push(render_b(&mut rng, &c, &d));
    }
    a_rows.shuffle(&mut rng);
    let mut b_perm: Vec<usize> = (0..b_rows.len()).collect();
    b_perm.shuffle(&mut rng);
    let mut b_pos = vec![0usize; b_rows.len()];
    for (new_pos, &old) in b_perm.iter().enumerate() {
        b_pos[old] = new_pos;
    }
    let b_shuffled: Vec<Vec<Value>> = b_perm.iter().map(|&old| b_rows[old].clone()).collect();
    let truth: Vec<(u32, u32)> = a_rows
        .iter()
        .enumerate()
        .filter_map(|(aid, (_, m))| m.map(|m| (aid as u32, b_pos[m] as u32)))
        .collect();
    EmDataset {
        name: "drugs".into(),
        a: Table::new("drugs_a", schema(), a_rows.into_iter().map(|(r, _)| r)),
        b: Table::new("drugs_b", schema(), b_shuffled),
        truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_truth() {
        let d = generate(0.002, 1);
        assert!(d.a.len() >= 900);
        assert!(!d.truth.is_empty());
        // ~60% of A matched.
        let ratio = d.truth.len() as f64 / d.a.len() as f64;
        assert!((0.5..0.7).contains(&ratio), "{ratio}");
    }

    #[test]
    fn formats_differ_across_systems() {
        let d = generate(0.001, 2);
        let didx = d.a.schema().index_of("description").unwrap();
        let mut exact = 0;
        for (aid, bid) in &d.truth {
            let av = d.a.get(*aid).unwrap().value(didx).render();
            let bv = d.b.get(*bid).unwrap().value(didx).render();
            if av == bv {
                exact += 1;
            }
        }
        // Fused doses + abbreviations: exact description agreement is rare.
        assert!(
            (exact as f64) < 0.2 * d.truth.len() as f64,
            "{exact}/{}",
            d.truth.len()
        );
    }

    #[test]
    fn matched_descriptions_stay_similar() {
        use falcon_textsim::{SimContext, SimFunction, Tokenizer};
        let d = generate(0.001, 3);
        let didx = d.a.schema().index_of("description").unwrap();
        let ctx = SimContext::empty();
        let sim = SimFunction::Jaccard(Tokenizer::QGram(3));
        let mut sims = Vec::new();
        for (aid, bid) in d.truth.iter().take(100) {
            let av = d.a.get(*aid).unwrap().value(didx).render();
            let bv = d.b.get(*bid).unwrap().value(didx).render();
            if let Some(s) = sim.score_str(&av, &bv, &ctx) {
                sims.push(s);
            }
        }
        let avg = sims.iter().sum::<f64>() / sims.len() as f64;
        // Abbreviated salts/forms and fused doses push q-gram overlap down
        // by design; matched pairs still sit clearly above random ones.
        assert!(avg > 0.4, "avg qgram jaccard {avg}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(0.001, 7).truth, generate(0.001, 7).truth);
    }
}
