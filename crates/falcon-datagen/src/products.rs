//! The Products dataset: electronics products across two vendors
//! (2,554 × 22,074 tuples, 1,154 matches at full scale). The hardest of
//! the three datasets in the paper (F1 ≈ 82%): titles are dirty, brands
//! and product nouns are shared across many non-matching products, and
//! "sibling" products (same brand and noun, different model) act as hard
//! negatives.

use crate::corrupt::{Corruptor, Dirtiness};
use crate::entity::{
    model_number, pick, sentence, BRANDS, FILLER, PRODUCT_ADJECTIVES, PRODUCT_NOUNS,
};
use crate::EmDataset;
use falcon_table::{AttrType, Schema, Table, Value};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Full-scale sizes from Table 1.
pub const FULL_A: usize = 2_554;
/// Full-scale |B|.
pub const FULL_B: usize = 22_074;
/// Full-scale match count.
pub const FULL_MATCHES: usize = 1_154;

#[derive(Clone)]
struct Product {
    brand: String,
    modelno: String,
    title: String,
    price: f64,
    descr: String,
}

fn make_product(rng: &mut SmallRng) -> Product {
    let brand = pick(rng, BRANDS).to_string();
    let noun = pick(rng, PRODUCT_NOUNS).to_string();
    let modelno = model_number(rng);
    let n_adj = rng.gen_range(1..3);
    let adjs: Vec<&str> = (0..n_adj).map(|_| pick(rng, PRODUCT_ADJECTIVES)).collect();
    let title = format!("{} {} {} {}", brand, adjs.join(" "), noun, modelno);
    let price = rng.gen_range(10.0_f64..900.0).round();
    let descr = {
        let n = rng.gen_range(12..25);
        sentence(rng, FILLER, n)
    };
    Product {
        brand,
        modelno,
        title,
        price,
        descr,
    }
}

/// A sibling: same brand and noun family, different model and price — a
/// hard negative for title-similarity matching.
fn make_sibling(rng: &mut SmallRng, base: &Product) -> Product {
    let mut p = base.clone();
    p.modelno = model_number(rng);
    p.title = {
        let mut toks: Vec<&str> = base.title.split_whitespace().collect();
        let m = toks.len() - 1;
        toks[m] = &p.modelno;
        toks.join(" ")
    };
    p.price = (base.price + rng.gen_range(20.0..150.0)).round();
    p.descr = {
        let n = rng.gen_range(12..25);
        sentence(rng, FILLER, n)
    };
    p
}

fn schema() -> Schema {
    Schema::new([
        ("brand", AttrType::Str),
        ("modelno", AttrType::Str),
        ("title", AttrType::Str),
        ("price", AttrType::Num),
        ("descr", AttrType::Str),
    ])
}

fn row(p: &Product) -> Vec<Value> {
    vec![
        Value::str(p.brand.clone()),
        Value::str(p.modelno.clone()),
        Value::str(p.title.clone()),
        Value::num(p.price),
        Value::str(p.descr.clone()),
    ]
}

fn dirty_row(rng: &mut SmallRng, c: &Corruptor, p: &Product) -> Vec<Value> {
    vec![
        c.string(rng, &p.brand),
        c.string(rng, &p.modelno),
        c.string_present(rng, &p.title),
        c.number(rng, p.price),
        c.string(rng, &p.descr),
    ]
}

/// Generate Products at `scale` (1.0 = paper sizes).
pub fn generate(scale: f64, seed: u64) -> EmDataset {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x50524f44);
    let a_size = ((FULL_A as f64 * scale).round() as usize).max(8);
    let b_size = ((FULL_B as f64 * scale).round() as usize).max(16);
    let matches = ((FULL_MATCHES as f64 * scale).round() as usize)
        .max(4)
        .min(a_size.min(b_size));
    let corruptor = Corruptor::new(Dirtiness::medium());

    // B: the big, mostly-clean vendor catalog, with sibling clusters.
    let mut b_products: Vec<Product> = Vec::with_capacity(b_size);
    while b_products.len() < b_size {
        let p = make_product(&mut rng);
        // With some probability append 1-2 siblings as hard negatives.
        if b_products.len() + 1 < b_size && rng.gen_bool(0.15) {
            let sib = make_sibling(&mut rng, &p);
            b_products.push(p);
            b_products.push(sib);
        } else {
            b_products.push(p);
        }
    }

    // A: `matches` dirty copies of random B products plus unmatched ones.
    let mut b_ids: Vec<usize> = (0..b_size).collect();
    b_ids.shuffle(&mut rng);
    let matched_b: Vec<usize> = b_ids.into_iter().take(matches).collect();

    let mut a_rows: Vec<(Vec<Value>, Option<usize>)> = Vec::with_capacity(a_size);
    for &bid in &matched_b {
        a_rows.push((dirty_row(&mut rng, &corruptor, &b_products[bid]), Some(bid)));
    }
    while a_rows.len() < a_size {
        let p = make_product(&mut rng);
        a_rows.push((row(&p), None));
    }
    a_rows.shuffle(&mut rng);

    let truth: Vec<(u32, u32)> = a_rows
        .iter()
        .enumerate()
        .filter_map(|(aid, (_, bid))| bid.map(|b| (aid as u32, b as u32)))
        .collect();
    let a = Table::new("products_a", schema(), a_rows.into_iter().map(|(r, _)| r));
    let b = Table::new("products_b", schema(), b_products.iter().map(row));
    EmDataset {
        name: "products".into(),
        a,
        b,
        truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_scale() {
        let d = generate(0.05, 1);
        assert!((d.a.len() as i64 - (FULL_A as f64 * 0.05) as i64).abs() <= 1);
        assert!((d.b.len() as i64 - (FULL_B as f64 * 0.05) as i64).abs() <= 1);
        assert!(!d.truth.is_empty());
        assert!(d.truth.len() < d.a.len());
    }

    #[test]
    fn truth_pairs_valid() {
        let d = generate(0.03, 2);
        for (aid, bid) in &d.truth {
            assert!((*aid as usize) < d.a.len());
            assert!((*bid as usize) < d.b.len());
        }
        // Each A tuple matches at most one B product here.
        let mut aids: Vec<u32> = d.truth.iter().map(|(a, _)| *a).collect();
        aids.sort_unstable();
        aids.dedup();
        assert_eq!(aids.len(), d.truth.len());
    }

    #[test]
    fn matched_pairs_are_similar_unmatched_are_not() {
        use falcon_textsim::{SimContext, SimFunction, Tokenizer};
        let d = generate(0.03, 3);
        let ctx = SimContext::empty();
        let sim = SimFunction::Jaccard(Tokenizer::QGram(3));
        let tidx = d.a.schema().index_of("title").unwrap();
        let mut match_sims = Vec::new();
        for (aid, bid) in d.truth.iter().take(30) {
            let av = d.a.get(*aid).unwrap().value(tidx).render();
            let bv = d.b.get(*bid).unwrap().value(tidx).render();
            if let Some(s) = sim.score_str(&av, &bv, &ctx) {
                match_sims.push(s);
            }
        }
        let avg_match = match_sims.iter().sum::<f64>() / match_sims.len() as f64;
        assert!(avg_match > 0.5, "matched title sim {avg_match}");
        // Random (non-truth) pairs should be much less similar on average.
        let mut rnd_sims = Vec::new();
        for i in 0..30usize {
            let av =
                d.a.get((i % d.a.len()) as u32)
                    .unwrap()
                    .value(tidx)
                    .render();
            let bv =
                d.b.get(((i * 7 + 3) % d.b.len()) as u32)
                    .unwrap()
                    .value(tidx)
                    .render();
            if let Some(s) = sim.score_str(&av, &bv, &ctx) {
                rnd_sims.push(s);
            }
        }
        let avg_rnd = rnd_sims.iter().sum::<f64>() / rnd_sims.len() as f64;
        assert!(avg_match > avg_rnd + 0.2, "{avg_match} vs {avg_rnd}");
    }

    #[test]
    fn deterministic() {
        let d1 = generate(0.02, 9);
        let d2 = generate(0.02, 9);
        assert_eq!(d1.truth, d2.truth);
        assert_eq!(d1.a.rows()[0], d2.a.rows()[0]);
    }
}
