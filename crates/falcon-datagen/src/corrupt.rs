//! Corruption model: turns a clean attribute value into the dirty variant a
//! second data source would hold. The mix of operations (typos, dropped /
//! swapped tokens, abbreviations, missing values, numeric jitter) is what
//! gives the synthetic datasets the real-world property the paper leans on:
//! exact keys disagree across sources while similarity stays high.

use falcon_table::Value;
use rand::Rng;

/// How dirty a source is (probabilities per value).
#[derive(Debug, Clone, Copy)]
pub struct Dirtiness {
    /// Probability of injecting a character-level typo into some token.
    pub typo: f64,
    /// Probability of dropping one token.
    pub drop_token: f64,
    /// Probability of swapping two adjacent tokens.
    pub swap_tokens: f64,
    /// Probability of abbreviating one token ("john" -> "j.").
    pub abbreviate: f64,
    /// Probability the value goes missing entirely.
    pub missing: f64,
    /// Relative jitter applied to numeric values (uniform in ±jitter).
    pub numeric_jitter: f64,
    /// Probability a numeric value goes missing.
    pub numeric_missing: f64,
}

impl Dirtiness {
    /// Light corruption (Songs-like: mostly clean duplicates).
    pub fn light() -> Self {
        Self {
            typo: 0.15,
            drop_token: 0.05,
            swap_tokens: 0.05,
            abbreviate: 0.03,
            missing: 0.02,
            numeric_jitter: 0.0,
            numeric_missing: 0.05,
        }
    }

    /// Medium corruption (Products-like).
    pub fn medium() -> Self {
        Self {
            typo: 0.3,
            drop_token: 0.15,
            swap_tokens: 0.10,
            abbreviate: 0.05,
            missing: 0.08,
            numeric_jitter: 0.05,
            numeric_missing: 0.10,
        }
    }

    /// Heavy corruption (Citations-like: abbreviations everywhere, missing
    /// fields — the regime where key-based blocking collapses).
    pub fn heavy() -> Self {
        Self {
            typo: 0.35,
            drop_token: 0.20,
            swap_tokens: 0.15,
            abbreviate: 0.45,
            missing: 0.15,
            numeric_jitter: 0.0,
            numeric_missing: 0.25,
        }
    }
}

/// Applies a [`Dirtiness`] profile to values using a caller-owned RNG.
pub struct Corruptor {
    /// The corruption profile.
    pub dirt: Dirtiness,
}

impl Corruptor {
    /// Create a corruptor with the given profile.
    pub fn new(dirt: Dirtiness) -> Self {
        Self { dirt }
    }

    /// Corrupt a string value.
    pub fn string(&self, rng: &mut impl Rng, s: &str) -> Value {
        if rng.gen_bool(self.dirt.missing) {
            return Value::Null;
        }
        self.string_present(rng, s)
    }

    /// Corrupt a string value that can never go missing (primary
    /// attributes like titles: the paper's Songs crowd instructions note
    /// "The song title will never be missing").
    pub fn string_present(&self, rng: &mut impl Rng, s: &str) -> Value {
        let mut tokens: Vec<String> = s.split_whitespace().map(str::to_string).collect();
        if tokens.is_empty() {
            return Value::Null;
        }
        if tokens.len() > 1 && rng.gen_bool(self.dirt.drop_token) {
            let i = rng.gen_range(0..tokens.len());
            tokens.remove(i);
        }
        if tokens.len() > 1 && rng.gen_bool(self.dirt.swap_tokens) {
            let i = rng.gen_range(0..tokens.len() - 1);
            tokens.swap(i, i + 1);
        }
        if rng.gen_bool(self.dirt.abbreviate) {
            let i = rng.gen_range(0..tokens.len());
            if let Some(c) = tokens[i].chars().next() {
                if c.is_alphabetic() && tokens[i].len() > 2 {
                    tokens[i] = format!("{c}.");
                }
            }
        }
        if rng.gen_bool(self.dirt.typo) {
            let i = rng.gen_range(0..tokens.len());
            tokens[i] = typo(rng, &tokens[i]);
        }
        Value::str(tokens.join(" "))
    }

    /// Corrupt a numeric value.
    pub fn number(&self, rng: &mut impl Rng, x: f64) -> Value {
        if rng.gen_bool(self.dirt.numeric_missing) {
            return Value::Null;
        }
        if self.dirt.numeric_jitter > 0.0 && rng.gen_bool(0.5) {
            let f = 1.0 + rng.gen_range(-self.dirt.numeric_jitter..=self.dirt.numeric_jitter);
            Value::num((x * f * 100.0).round() / 100.0)
        } else {
            Value::num(x)
        }
    }
}

/// Inject one character-level typo (substitute / delete / insert /
/// transpose) into a token.
pub fn typo(rng: &mut impl Rng, token: &str) -> String {
    let chars: Vec<char> = token.chars().collect();
    if chars.is_empty() {
        return token.to_string();
    }
    let mut out = chars.clone();
    let i = rng.gen_range(0..chars.len());
    match rng.gen_range(0..4u8) {
        0 => out[i] = (b'a' + rng.gen_range(0..26)) as char, // substitute
        1 if out.len() > 1 => {
            out.remove(i); // delete
        }
        2 => out.insert(i, (b'a' + rng.gen_range(0..26)) as char), // insert
        _ => {
            if i + 1 < out.len() {
                out.swap(i, i + 1); // transpose
            }
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(11)
    }

    #[test]
    fn typo_changes_little() {
        let mut r = rng();
        for _ in 0..50 {
            let t = typo(&mut r, "keyboard");
            let d = falcon_textsim::edit::levenshtein("keyboard", &t);
            assert!(d <= 2, "{t}");
        }
    }

    #[test]
    fn zero_dirtiness_is_identity() {
        let c = Corruptor::new(Dirtiness {
            typo: 0.0,
            drop_token: 0.0,
            swap_tokens: 0.0,
            abbreviate: 0.0,
            missing: 0.0,
            numeric_jitter: 0.0,
            numeric_missing: 0.0,
        });
        let mut r = rng();
        assert_eq!(c.string(&mut r, "hello world"), Value::str("hello world"));
        assert_eq!(c.number(&mut r, 42.0), Value::num(42.0));
    }

    #[test]
    fn full_missing_always_null() {
        let c = Corruptor::new(Dirtiness {
            missing: 1.0,
            ..Dirtiness::light()
        });
        let mut r = rng();
        assert!(c.string(&mut r, "anything").is_null());
    }

    #[test]
    fn corrupted_strings_remain_similar() {
        use falcon_textsim::{SimContext, SimFunction, Tokenizer};
        let c = Corruptor::new(Dirtiness::medium());
        let mut r = rng();
        let base = "sony wireless noise-canceling headphones wh-1000";
        let ctx = SimContext::empty();
        let mut sims = Vec::new();
        for _ in 0..100 {
            let v = c.string(&mut r, base);
            if v.is_null() {
                continue;
            }
            if let Some(s) =
                SimFunction::Jaccard(Tokenizer::QGram(3)).score_str(base, &v.render(), &ctx)
            {
                sims.push(s);
            }
        }
        let avg = sims.iter().sum::<f64>() / sims.len() as f64;
        assert!(avg > 0.6, "avg qgram jaccard {avg}");
    }

    #[test]
    fn heavy_dirt_abbreviates_often() {
        let c = Corruptor::new(Dirtiness::heavy());
        let mut r = rng();
        let abbreviated = (0..200)
            .filter(|_| {
                let v = c.string(&mut r, "jonathan williams");
                v.render().contains('.')
            })
            .count();
        assert!(abbreviated > 30, "{abbreviated}");
    }
}
