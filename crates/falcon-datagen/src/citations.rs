//! The Citations dataset: Citeseer × DBLP style bibliography matching
//! (1.82M × 2.51M tuples, 559K matches at full scale). The two sources
//! format the *same* publication very differently — abbreviated author
//! names, abbreviated venue names, missing months — which is exactly why
//! the paper reports key-based blocking recall of only 38.8% here while
//! rule-based blocking keeps 99.67%.

use crate::corrupt::{Corruptor, Dirtiness};
use crate::entity::{person_name, pick, sentence, JOURNALS, MONTHS, TOPIC_WORDS};
use crate::EmDataset;
use falcon_table::{AttrType, Schema, Table, Value};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Full-scale |A| (Citeseer side) from Table 1.
pub const FULL_A: usize = 1_823_978;
/// Full-scale |B| (DBLP side).
pub const FULL_B: usize = 2_512_927;
/// Full-scale match count.
pub const FULL_MATCHES: usize = 558_787;

#[derive(Clone)]
struct Paper {
    title: String,
    authors: Vec<String>,
    journal_full: String,
    journal_abbr: String,
    month: String,
    year: f64,
    pub_type: String,
}

fn make_paper(rng: &mut SmallRng) -> Paper {
    let n_title = rng.gen_range(4..9);
    let title = format!(
        "{} {}",
        sentence(rng, TOPIC_WORDS, n_title - 1),
        pick(rng, TOPIC_WORDS)
    );
    let n_auth = rng.gen_range(1..5);
    let authors = (0..n_auth).map(|_| person_name(rng)).collect();
    let (full, abbr) = JOURNALS[rng.gen_range(0..JOURNALS.len())];
    Paper {
        title,
        authors,
        journal_full: full.to_string(),
        journal_abbr: abbr.to_string(),
        month: pick(rng, MONTHS).to_string(),
        year: rng.gen_range(1985..2016) as f64,
        pub_type: ["article", "inproceedings"][rng.gen_range(0..2)].to_string(),
    }
}

fn schema() -> Schema {
    Schema::new([
        ("title", AttrType::Str),
        ("authors", AttrType::Str),
        ("journal", AttrType::Str),
        ("month", AttrType::Str),
        ("year", AttrType::Num),
        ("pub_type", AttrType::Str),
    ])
}

/// Citeseer-style rendering: full names, full venue, month often present.
fn render_a(rng: &mut SmallRng, c: &Corruptor, p: &Paper) -> Vec<Value> {
    let authors = p.authors.join(", ");
    vec![
        c.string_present(rng, &p.title),
        c.string(rng, &authors),
        c.string(rng, &p.journal_full),
        if rng.gen_bool(0.7) {
            Value::str(p.month.clone())
        } else {
            Value::Null
        },
        c.number(rng, p.year),
        Value::str(p.pub_type.clone()),
    ]
}

/// DBLP-style rendering: initialed author names, abbreviated venue, month
/// usually missing.
fn render_b(rng: &mut SmallRng, c: &Corruptor, p: &Paper) -> Vec<Value> {
    let authors: Vec<String> = p
        .authors
        .iter()
        .map(|full| {
            let mut parts = full.split_whitespace();
            let first = parts.next().unwrap_or("");
            let last = parts.next().unwrap_or("");
            if rng.gen_bool(0.8) {
                format!("{}. {}", &first[..1], last)
            } else {
                full.clone()
            }
        })
        .collect();
    let journal = if rng.gen_bool(0.75) {
        p.journal_abbr.clone()
    } else {
        p.journal_full.clone()
    };
    vec![
        c.string_present(rng, &p.title),
        c.string(rng, &authors.join("; ")),
        Value::str(journal),
        if rng.gen_bool(0.15) {
            Value::str(p.month.clone())
        } else {
            Value::Null
        },
        c.number(rng, p.year),
        Value::str(p.pub_type.clone()),
    ]
}

/// Generate Citations at `scale` (1.0 = paper sizes).
pub fn generate(scale: f64, seed: u64) -> EmDataset {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x43495445);
    let a_size = ((FULL_A as f64 * scale).round() as usize).max(12);
    let b_size = ((FULL_B as f64 * scale).round() as usize).max(16);
    let matches = ((FULL_MATCHES as f64 * scale).round() as usize)
        .max(4)
        .min(a_size.min(b_size));
    // A-side corruption is light-ish typographically; B differs mostly by
    // formatting. Cross-source dirt comes from the renderers.
    let c_a = Corruptor::new(Dirtiness {
        typo: 0.2,
        drop_token: 0.08,
        swap_tokens: 0.05,
        abbreviate: 0.05,
        missing: 0.03,
        numeric_jitter: 0.0,
        numeric_missing: 0.1,
    });
    let c_b = Corruptor::new(Dirtiness {
        typo: 0.15,
        drop_token: 0.05,
        swap_tokens: 0.03,
        abbreviate: 0.1,
        missing: 0.02,
        numeric_jitter: 0.0,
        numeric_missing: 0.05,
    });

    let mut a_rows: Vec<(Vec<Value>, Option<usize>)> = Vec::with_capacity(a_size);
    let mut b_rows: Vec<Vec<Value>> = Vec::with_capacity(b_size);

    // Matched papers appear in both sources with different formatting.
    for m in 0..matches {
        let p = make_paper(&mut rng);
        a_rows.push((render_a(&mut rng, &c_a, &p), Some(m)));
        b_rows.push(render_b(&mut rng, &c_b, &p));
    }
    // Unmatched tail on each side.
    while a_rows.len() < a_size {
        let p = make_paper(&mut rng);
        a_rows.push((render_a(&mut rng, &c_a, &p), None));
    }
    while b_rows.len() < b_size {
        let p = make_paper(&mut rng);
        b_rows.push(render_b(&mut rng, &c_b, &p));
    }
    a_rows.shuffle(&mut rng);
    // Shuffle B while tracking where each matched index lands.
    let mut b_perm: Vec<usize> = (0..b_rows.len()).collect();
    b_perm.shuffle(&mut rng);
    let mut b_pos = vec![0usize; b_rows.len()];
    for (new_pos, &old) in b_perm.iter().enumerate() {
        b_pos[old] = new_pos;
    }
    let b_shuffled: Vec<Vec<Value>> = b_perm.iter().map(|&old| b_rows[old].clone()).collect();

    let truth: Vec<(u32, u32)> = a_rows
        .iter()
        .enumerate()
        .filter_map(|(aid, (_, m))| m.map(|m| (aid as u32, b_pos[m] as u32)))
        .collect();
    let a = Table::new("citations_a", schema(), a_rows.into_iter().map(|(r, _)| r));
    let b = Table::new("citations_b", schema(), b_shuffled);
    EmDataset {
        name: "citations".into(),
        a,
        b,
        truth,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_truth_scale() {
        let d = generate(0.002, 1);
        assert!(d.a.len() < d.b.len());
        assert!(!d.truth.is_empty());
        for (aid, bid) in &d.truth {
            assert!((*aid as usize) < d.a.len());
            assert!((*bid as usize) < d.b.len());
        }
    }

    #[test]
    fn exact_keys_disagree_across_sources() {
        // The property that breaks KBB: matched pairs rarely share an exact
        // (journal, authors) key.
        let d = generate(0.002, 2);
        let jidx = d.a.schema().index_of("journal").unwrap();
        let aidx = d.a.schema().index_of("authors").unwrap();
        let mut same_key = 0;
        for (aid, bid) in &d.truth {
            let aj = d.a.get(*aid).unwrap().value(jidx).render();
            let bj = d.b.get(*bid).unwrap().value(jidx).render();
            let aa = d.a.get(*aid).unwrap().value(aidx).render();
            let ba = d.b.get(*bid).unwrap().value(aidx).render();
            if aj == bj && aa == ba {
                same_key += 1;
            }
        }
        let rate = same_key as f64 / d.truth.len() as f64;
        assert!(rate < 0.3, "exact-key agreement {rate}");
    }

    #[test]
    fn titles_stay_similar_across_sources() {
        use falcon_textsim::{SimContext, SimFunction, Tokenizer};
        let d = generate(0.002, 3);
        let tidx = d.a.schema().index_of("title").unwrap();
        let ctx = SimContext::empty();
        let sim = SimFunction::Jaccard(Tokenizer::Word);
        let mut sims = Vec::new();
        for (aid, bid) in d.truth.iter().take(100) {
            let at = d.a.get(*aid).unwrap().value(tidx).render();
            let bt = d.b.get(*bid).unwrap().value(tidx).render();
            if let Some(s) = sim.score_str(&at, &bt, &ctx) {
                sims.push(s);
            }
        }
        let avg = sims.iter().sum::<f64>() / sims.len() as f64;
        assert!(avg > 0.55, "avg matched title jaccard {avg}");
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(0.001, 9).truth, generate(0.001, 9).truth);
    }
}
