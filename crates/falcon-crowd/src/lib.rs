//! Crowdsourcing substrate for Falcon.
//!
//! The paper runs on Mechanical Turk with real workers; its sensitivity
//! analysis (Section 11.4) falls back to a *simulated crowd of random
//! workers with a fixed error rate and fixed HIT latency* — exactly the
//! model this crate implements. Three crowds are provided:
//!
//! * [`sim::OracleCrowd`] — perfect answers from ground truth (used in
//!   tests and to isolate machine-side behaviour),
//! * [`sim::RandomWorkerCrowd`] — each answer is flipped with probability
//!   `error_rate` (the paper's Figure 9 model; MTurk-like latency),
//! * [`sim::ExpertCrowd`] — an in-house "crowd of one" with low latency
//!   and zero marginal cost (the drug-matching deployment of Section 11.1).
//!
//! For hands-on labeling without any crowd, [`interactive::InteractiveCrowd`]
//! asks a human at a terminal (the "label it yourself" mode of the
//! paper's Example 1).
//!
//! [`session::CrowdSession`] layers HIT batching (10 questions/HIT, 2
//! cents/answer), majority-of-3 and strong-majority-up-to-7 voting, and a
//! cost/latency ledger on top of any [`Crowd`].

pub mod interactive;
pub mod journal;
pub mod session;
pub mod sim;
pub mod vote;

use falcon_table::IdPair;
use std::time::Duration;

pub use journal::{CrowdJournal, JournalError};
pub use session::{CrowdSession, Ledger, RepostPolicy, SessionConfig};

/// A source of (possibly noisy) match/no-match answers about tuple pairs.
///
/// `answer` models a *single worker's* answer; voting schemes combine
/// several answers per question. Implementations must be thread safe so
/// answers can be collected while the machine side keeps working (the
/// masking optimizations of Section 10.2).
pub trait Crowd: Send + Sync {
    /// One worker's answer for one pair (`true` = match).
    fn answer(&self, pair: IdPair) -> bool;

    /// One worker's answer, allowing for failure: `None` models a HIT
    /// that expired or was abandoned before the worker answered (the
    /// dominant failure mode on real MTurk). The default implementation
    /// never fails; [`sim::UnreliableCrowd`] loses answers at a seeded
    /// rate. Voting re-posts lost questions — see
    /// [`vote::majority_with_policy`].
    fn try_answer(&self, pair: IdPair) -> Option<bool> {
        Some(self.answer(pair))
    }

    /// Advance the crowd's internal state as if `draws` calls to
    /// [`Self::try_answer`] had happened, without producing answers.
    ///
    /// Used when resuming from a [`journal::CrowdJournal`]: replayed
    /// batches skip the crowd, so a seeded simulated crowd must fast
    /// forward its RNG to the state an uninterrupted run would be in —
    /// that is what makes a resumed run bit-identical to an
    /// uninterrupted one. Stateless crowds need not override.
    fn fast_forward(&self, draws: usize) {
        let _ = draws;
    }

    /// Virtual latency of one HIT round (posting a batch of HITs and
    /// waiting for all answers). MTurk ≈ 1.5 min per 10-question HIT in the
    /// paper's simulations; in-house experts are much faster.
    fn latency_per_round(&self) -> Duration;

    /// Reward paid per answer in dollars (MTurk: $0.02; in-house: $0).
    fn cost_per_answer(&self) -> f64;

    /// Human-readable crowd name.
    fn name(&self) -> &str;
}

impl<C: Crowd + ?Sized> Crowd for &C {
    fn answer(&self, pair: IdPair) -> bool {
        (**self).answer(pair)
    }
    fn try_answer(&self, pair: IdPair) -> Option<bool> {
        (**self).try_answer(pair)
    }
    fn fast_forward(&self, draws: usize) {
        (**self).fast_forward(draws);
    }
    fn latency_per_round(&self) -> Duration {
        (**self).latency_per_round()
    }
    fn cost_per_answer(&self) -> f64 {
        (**self).cost_per_answer()
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}

impl<C: Crowd + ?Sized> Crowd for std::sync::Arc<C> {
    fn answer(&self, pair: IdPair) -> bool {
        (**self).answer(pair)
    }
    fn try_answer(&self, pair: IdPair) -> Option<bool> {
        (**self).try_answer(pair)
    }
    fn fast_forward(&self, draws: usize) {
        (**self).fast_forward(draws);
    }
    fn latency_per_round(&self) -> Duration {
        (**self).latency_per_round()
    }
    fn cost_per_answer(&self) -> f64 {
        (**self).cost_per_answer()
    }
    fn name(&self) -> &str {
        (**self).name()
    }
}
