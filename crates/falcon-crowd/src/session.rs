//! HIT batching, voting and the cost/latency ledger.
//!
//! The paper's crowdsourcing shape: questions are grouped 10 per HIT
//! (`q = 10`), a labeling iteration posts `h = 2` HITs (20 pairs), every
//! answer costs `c = $0.02`, `al_matcher` takes a majority of `v_m = 3`
//! answers per question, and `eval_rules` uses a strong-majority scheme
//! with up to `v_e = 7` answers. One iteration's HITs are posted
//! concurrently, so an iteration consumes one round of crowd latency.

use crate::vote::{majority, strong_majority};
use crate::Crowd;
use falcon_table::IdPair;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Crowdsourcing shape parameters (paper defaults).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Questions per HIT (`q`).
    pub questions_per_hit: usize,
    /// Majority size for active-learning questions (`v_m`).
    pub majority_votes: usize,
    /// Maximum answers for rule-evaluation questions (`v_e`).
    pub strong_majority_max: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            questions_per_hit: 10,
            majority_votes: 3,
            strong_majority_max: 7,
        }
    }
}

/// Running totals of crowd activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Ledger {
    /// Questions asked (each = one pair labeled by vote).
    pub questions: usize,
    /// Individual answers collected.
    pub answers: usize,
    /// HITs posted.
    pub hits: usize,
    /// Labeling rounds (each consumes one round of latency).
    pub rounds: usize,
    /// Total dollars spent.
    pub cost: f64,
    /// Total virtual crowd latency.
    pub crowd_time: Duration,
}

/// A crowdsourcing session: a crowd plus batching/voting configuration and
/// a ledger.
///
/// ```
/// use falcon_crowd::CrowdSession;
/// use falcon_crowd::sim::{GroundTruth, RandomWorkerCrowd};
///
/// let truth = GroundTruth::new([(1, 1)]);
/// let crowd = RandomWorkerCrowd::new(truth, 0.0, 42); // 0% error
/// let mut session = CrowdSession::new(crowd);
/// let (labels, _latency) = session.label_batch(&[(1, 1), (1, 2)]);
/// assert_eq!(labels, vec![((1, 1), true), ((1, 2), false)]);
/// assert_eq!(session.ledger().answers, 6); // majority of 3 per question
/// ```
pub struct CrowdSession<C: Crowd> {
    crowd: C,
    /// Shape parameters.
    pub config: SessionConfig,
    ledger: Ledger,
}

impl<C: Crowd> CrowdSession<C> {
    /// Start a session over a crowd with default (paper) parameters.
    pub fn new(crowd: C) -> Self {
        Self {
            crowd,
            config: SessionConfig::default(),
            ledger: Ledger::default(),
        }
    }

    /// Start with explicit parameters.
    pub fn with_config(crowd: C, config: SessionConfig) -> Self {
        Self {
            crowd,
            config,
            ledger: Ledger::default(),
        }
    }

    /// The underlying crowd.
    pub fn crowd(&self) -> &C {
        &self.crowd
    }

    /// Ledger snapshot.
    pub fn ledger(&self) -> Ledger {
        self.ledger
    }

    /// Latency one labeling round will consume (exposed so the optimizer
    /// can size masking windows before posting).
    pub fn round_latency(&self) -> Duration {
        self.crowd.latency_per_round()
    }

    fn account_round(&mut self, questions: usize, answers: usize) -> Duration {
        let hits = questions.div_ceil(self.config.questions_per_hit.max(1));
        self.ledger.questions += questions;
        self.ledger.answers += answers;
        self.ledger.hits += hits;
        self.ledger.rounds += 1;
        self.ledger.cost += answers as f64 * self.crowd.cost_per_answer();
        let latency = self.crowd.latency_per_round();
        self.ledger.crowd_time += latency;
        latency
    }

    /// Label one iteration's batch with majority-of-`v_m` voting (the
    /// `al_matcher` scheme). Returns the labels plus the round's latency.
    pub fn label_batch(&mut self, pairs: &[IdPair]) -> (Vec<(IdPair, bool)>, Duration) {
        let mut labels = Vec::with_capacity(pairs.len());
        let mut answers = 0;
        for &p in pairs {
            let v = majority(&self.crowd, p, self.config.majority_votes);
            answers += v.answers;
            labels.push((p, v.label));
        }
        let latency = self.account_round(pairs.len(), answers);
        (labels, latency)
    }

    /// Label one iteration's batch with the strong-majority scheme (the
    /// `eval_rules` scheme).
    pub fn label_batch_strong(&mut self, pairs: &[IdPair]) -> (Vec<(IdPair, bool)>, Duration) {
        let mut labels = Vec::with_capacity(pairs.len());
        let mut answers = 0;
        for &p in pairs {
            let v = strong_majority(&self.crowd, p, self.config.strong_majority_max);
            answers += v.answers;
            labels.push((p, v.label));
        }
        let latency = self.account_round(pairs.len(), answers);
        (labels, latency)
    }
}

/// The paper's hard cap on crowd cost (Section 3.4):
/// `C_max = (2·n_m·v_m + k·n_e·v_e) · h · q · c = $349.60` with
/// `n_m = 29, v_m = 3, k = 20, n_e = 5, v_e = 7, h = 2, q = 10, c = $0.02`.
#[allow(clippy::too_many_arguments)] // one argument per symbol in the paper's formula
pub fn cost_cap(
    n_m: usize,
    v_m: usize,
    k: usize,
    n_e: usize,
    v_e: usize,
    h: usize,
    q: usize,
    c: f64,
) -> f64 {
    ((2 * n_m * v_m + k * n_e * v_e) * h * q) as f64 * c
}

/// The cap with the paper's exact parameter setting.
pub fn paper_cost_cap() -> f64 {
    cost_cap(29, 3, 20, 5, 7, 2, 10, 0.02)
}

/// Proposition 3's upper bound on total crowd time:
/// `t_c <= t_a · (2·k·q1 + 20·n·q2)` where `t_a` is the average time to
/// label one pair, `k` the active-learning iteration cap, `q1` pairs per
/// AL iteration, `n` the number of rules evaluated, and `q2` pairs per
/// rule-evaluation iteration (the 20 comes from Proposition 2's bound on
/// iterations per rule).
pub fn crowd_time_bound(t_a: Duration, k: usize, q1: usize, n: usize, q2: usize) -> Duration {
    t_a * (2 * k * q1 + 20 * n * q2) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{GroundTruth, OracleCrowd, RandomWorkerCrowd};

    fn truth() -> GroundTruth {
        GroundTruth::new([(0, 0), (1, 1)])
    }

    #[test]
    fn ledger_accounts_batches() {
        let crowd = RandomWorkerCrowd::new(truth(), 0.0, 5);
        let mut s = CrowdSession::new(crowd);
        let pairs: Vec<IdPair> = (0..20).map(|i| (i, i)).collect();
        let (labels, latency) = s.label_batch(&pairs);
        assert_eq!(labels.len(), 20);
        assert!(labels[0].1); // (0,0) is a match
        assert!(!labels[5].1);
        let l = s.ledger();
        assert_eq!(l.questions, 20);
        assert_eq!(l.answers, 60); // 3 votes each
        assert_eq!(l.hits, 2); // 20 questions / 10 per HIT
        assert_eq!(l.rounds, 1);
        assert!((l.cost - 60.0 * 0.02).abs() < 1e-9);
        assert_eq!(l.crowd_time, latency);
    }

    #[test]
    fn strong_majority_batch_uses_three_answers_when_unanimous() {
        let mut s = CrowdSession::new(OracleCrowd::new(truth()));
        let (_, _) = s.label_batch_strong(&[(0, 0), (0, 1)]);
        assert_eq!(s.ledger().answers, 6);
        assert_eq!(s.ledger().cost, 0.0); // oracle is free
    }

    #[test]
    fn paper_cost_cap_is_349_60() {
        assert!((paper_cost_cap() - 349.60).abs() < 1e-9);
    }

    #[test]
    fn proposition3_bound_dominates_observed_crowd_time() {
        // With the paper's parameters and t_a = 9s/pair (1.5 min per
        // 10-question HIT), the bound is about 9·(2·30·20 + 20·20·20)
        // = 9·9200s ≈ 23h — and any actual capped run stays below it.
        let bound = crowd_time_bound(Duration::from_secs(9), 30, 20, 20, 20);
        assert_eq!(bound, Duration::from_secs(9 * 9200));
        // An actual session: 30 AL rounds + 20 rules × 5 rounds of latency.
        let per_round = Duration::from_secs(90);
        let actual = per_round * (30 + 20 * 5);
        assert!(actual < bound);
    }

    #[test]
    fn rounds_accumulate_latency() {
        let mut s = CrowdSession::new(OracleCrowd::new(truth()));
        let lat = s.round_latency();
        s.label_batch(&[(0, 0)]);
        s.label_batch(&[(1, 1)]);
        assert_eq!(s.ledger().crowd_time, lat * 2);
        assert_eq!(s.ledger().rounds, 2);
    }
}
