//! HIT batching, voting and the cost/latency ledger.
//!
//! The paper's crowdsourcing shape: questions are grouped 10 per HIT
//! (`q = 10`), a labeling iteration posts `h = 2` HITs (20 pairs), every
//! answer costs `c = $0.02`, `al_matcher` takes a majority of `v_m = 3`
//! answers per question, and `eval_rules` uses a strong-majority scheme
//! with up to `v_e = 7` answers. One iteration's HITs are posted
//! concurrently, so an iteration consumes one round of crowd latency —
//! plus one extra round per re-post wave when workers abandon questions.
//!
//! With a [`CrowdJournal`] attached, every labeled batch is checkpointed
//! to disk before its labels are returned, and a resumed session replays
//! journaled batches — recorded labels, recorded cost and latency, zero
//! live crowd questions — before going live where the crashed run
//! stopped.

use crate::journal::{BatchRecord, CrowdJournal, JournalError, QuestionRecord};
use crate::vote::{majority_with_policy, strong_majority_with_policy, Vote};
use crate::Crowd;
use falcon_table::IdPair;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Recovery policy for lost crowd answers (expired / abandoned HITs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepostPolicy {
    /// Re-posts allowed per question before voting gives up on further
    /// answers (MTurk HITs are re-posted when they expire unanswered).
    pub max_reposts: usize,
    /// Extra votes from fresh workers when the base votes end without
    /// consensus (a tie — only reachable when answers were lost or the
    /// vote count is even).
    pub escalation_votes: usize,
}

impl Default for RepostPolicy {
    fn default() -> Self {
        Self {
            max_reposts: 25,
            escalation_votes: 3,
        }
    }
}

/// Crowdsourcing shape parameters (paper defaults).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Questions per HIT (`q`).
    pub questions_per_hit: usize,
    /// Majority size for active-learning questions (`v_m`).
    pub majority_votes: usize,
    /// Maximum answers for rule-evaluation questions (`v_e`).
    pub strong_majority_max: usize,
    /// Recovery policy for lost answers and no-consensus outcomes.
    pub repost: RepostPolicy,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            questions_per_hit: 10,
            majority_votes: 3,
            strong_majority_max: 7,
            repost: RepostPolicy::default(),
        }
    }
}

/// Running totals of crowd activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Ledger {
    /// Questions asked (each = one pair labeled by vote).
    pub questions: usize,
    /// Individual answers collected.
    pub answers: usize,
    /// Answers lost to worker timeouts/abandonment (re-posted).
    pub lost_answers: usize,
    /// Questions whose vote needed escalation to reach consensus.
    pub escalations: usize,
    /// HITs posted.
    pub hits: usize,
    /// Labeling rounds (each consumes one round of latency; re-post
    /// waves count as extra rounds).
    pub rounds: usize,
    /// Total dollars spent (delivered answers only — expired HITs are
    /// not paid).
    pub cost: f64,
    /// Total virtual crowd latency.
    pub crowd_time: Duration,
}

/// Which voting scheme a batch used (also the journal's scheme tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scheme {
    Majority,
    Strong,
}

impl Scheme {
    fn tag(self) -> &'static str {
        match self {
            Self::Majority => "maj",
            Self::Strong => "strong",
        }
    }
}

/// A crowdsourcing session: a crowd plus batching/voting configuration and
/// a ledger.
///
/// ```
/// use falcon_crowd::CrowdSession;
/// use falcon_crowd::sim::{GroundTruth, RandomWorkerCrowd};
///
/// let truth = GroundTruth::new([(1, 1)]);
/// let crowd = RandomWorkerCrowd::new(truth, 0.0, 42); // 0% error
/// let mut session = CrowdSession::new(crowd);
/// let (labels, _latency) = session.label_batch(&[(1, 1), (1, 2)]);
/// assert_eq!(labels, vec![((1, 1), true), ((1, 2), false)]);
/// assert_eq!(session.ledger().answers, 6); // majority of 3 per question
/// ```
pub struct CrowdSession<C: Crowd> {
    crowd: C,
    /// Shape parameters.
    pub config: SessionConfig,
    ledger: Ledger,
    journal: Option<CrowdJournal>,
    journal_error: Option<JournalError>,
}

impl<C: Crowd> CrowdSession<C> {
    /// Start a session over a crowd with default (paper) parameters.
    pub fn new(crowd: C) -> Self {
        Self {
            crowd,
            config: SessionConfig::default(),
            ledger: Ledger::default(),
            journal: None,
            journal_error: None,
        }
    }

    /// Start with explicit parameters.
    pub fn with_config(crowd: C, config: SessionConfig) -> Self {
        Self {
            crowd,
            config,
            ledger: Ledger::default(),
            journal: None,
            journal_error: None,
        }
    }

    /// Attach a checkpoint journal: labeled batches are recorded to it,
    /// and batches it already holds are replayed instead of asked.
    pub fn with_journal(mut self, journal: CrowdJournal) -> Self {
        self.journal = Some(journal);
        self
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<&CrowdJournal> {
        self.journal.as_ref()
    }

    /// A journal write failure, if one occurred. Checkpointing failure
    /// does not abort labeling — the session degrades to unjournaled
    /// operation and stashes the error here for the driver to surface.
    pub fn journal_error(&self) -> Option<&JournalError> {
        self.journal_error.as_ref()
    }

    /// The underlying crowd.
    pub fn crowd(&self) -> &C {
        &self.crowd
    }

    /// Ledger snapshot.
    pub fn ledger(&self) -> Ledger {
        self.ledger
    }

    /// Latency one labeling round will consume (exposed so the optimizer
    /// can size masking windows before posting).
    pub fn round_latency(&self) -> Duration {
        self.crowd.latency_per_round()
    }

    /// Flush and `fsync` the attached journal (no-op without one).
    /// Called by the driver when a gated run is cancelled, so every
    /// journaled batch is durable before the unwind and the run can be
    /// resumed without re-asking the crowd. A sync failure degrades to
    /// unjournaled operation exactly like a write failure.
    pub fn finalize_journal(&mut self) {
        if let Some(j) = self.journal.as_mut() {
            if let Err(e) = j.finalize() {
                self.journal_error = Some(e);
                self.journal = None;
            }
        }
    }

    /// Record an operator boundary in the journal (or replay past the
    /// marker when resuming).
    pub fn mark_op(&mut self, label: &str) {
        if let Some(j) = self.journal.as_mut() {
            if let Err(e) = j.mark_op(label) {
                self.journal_error = Some(e);
                self.journal = None;
            }
        }
    }

    /// Label one iteration's batch with majority-of-`v_m` voting (the
    /// `al_matcher` scheme). Returns the labels plus the round's latency.
    pub fn label_batch(&mut self, pairs: &[IdPair]) -> (Vec<(IdPair, bool)>, Duration) {
        self.label_batch_impl(pairs, Scheme::Majority)
    }

    /// Label one iteration's batch with the strong-majority scheme (the
    /// `eval_rules` scheme).
    pub fn label_batch_strong(&mut self, pairs: &[IdPair]) -> (Vec<(IdPair, bool)>, Duration) {
        self.label_batch_impl(pairs, Scheme::Strong)
    }

    fn label_batch_impl(
        &mut self,
        pairs: &[IdPair],
        scheme: Scheme,
    ) -> (Vec<(IdPair, bool)>, Duration) {
        if let Some(batch) = self.try_replay(scheme, pairs) {
            return self.apply_replayed(&batch);
        }
        let mut labels = Vec::with_capacity(pairs.len());
        let mut questions = Vec::with_capacity(pairs.len());
        let mut answers = 0usize;
        let mut lost = 0usize;
        let mut escalations = 0usize;
        let mut worst_lost = 0usize;
        for &p in pairs {
            let v: Vote = match scheme {
                Scheme::Majority => majority_with_policy(
                    &self.crowd,
                    p,
                    self.config.majority_votes,
                    &self.config.repost,
                ),
                Scheme::Strong => strong_majority_with_policy(
                    &self.crowd,
                    p,
                    self.config.strong_majority_max,
                    &self.config.repost,
                ),
            };
            answers += v.answers;
            lost += v.lost;
            escalations += usize::from(v.escalated);
            worst_lost = worst_lost.max(v.lost);
            labels.push((p, v.label));
            questions.push(QuestionRecord {
                pair: p,
                label: v.label,
                answers: v.answers,
                lost: v.lost,
            });
        }
        // HITs are posted concurrently, so the batch costs one latency
        // round plus one per re-post wave of its worst question.
        let rounds = 1 + worst_lost;
        let latency = self.crowd.latency_per_round() * rounds as u32;
        self.account(pairs.len(), answers, lost, escalations, rounds, latency);
        let record = BatchRecord {
            scheme: scheme.tag().to_string(),
            questions,
            rounds,
            escalations,
            latency,
        };
        if let Some(j) = self.journal.as_mut() {
            if let Err(e) = j.record_batch(&record) {
                self.journal_error = Some(e);
                self.journal = None;
            }
        }
        (labels, latency)
    }

    fn try_replay(&mut self, scheme: Scheme, pairs: &[IdPair]) -> Option<BatchRecord> {
        let j = self.journal.as_mut()?;
        match j.try_replay_batch(scheme.tag(), pairs) {
            Ok(batch) => batch,
            Err(e) => {
                self.journal_error = Some(e);
                self.journal = None;
                None
            }
        }
    }

    /// Charge a replayed batch to the ledger from its recorded numbers,
    /// fast-forward the crowd past the draws the live batch consumed,
    /// and return the recorded labels — zero crowd questions spent.
    fn apply_replayed(&mut self, batch: &BatchRecord) -> (Vec<(IdPair, bool)>, Duration) {
        let answers = batch.answers();
        let lost = batch.lost();
        self.account(
            batch.questions.len(),
            answers,
            lost,
            batch.escalations,
            batch.rounds,
            batch.latency,
        );
        self.crowd.fast_forward(batch.draws());
        let labels = batch.questions.iter().map(|q| (q.pair, q.label)).collect();
        (labels, batch.latency)
    }

    fn account(
        &mut self,
        questions: usize,
        answers: usize,
        lost: usize,
        escalations: usize,
        rounds: usize,
        latency: Duration,
    ) {
        let hits = questions.div_ceil(self.config.questions_per_hit.max(1));
        self.ledger.questions += questions;
        self.ledger.answers += answers;
        self.ledger.lost_answers += lost;
        self.ledger.escalations += escalations;
        self.ledger.hits += hits;
        self.ledger.rounds += rounds;
        self.ledger.cost += answers as f64 * self.crowd.cost_per_answer();
        self.ledger.crowd_time += latency;
    }
}

/// The paper's hard cap on crowd cost (Section 3.4):
/// `C_max = (2·n_m·v_m + k·n_e·v_e) · h · q · c = $349.60` with
/// `n_m = 29, v_m = 3, k = 20, n_e = 5, v_e = 7, h = 2, q = 10, c = $0.02`.
#[allow(clippy::too_many_arguments)] // one argument per symbol in the paper's formula
pub fn cost_cap(
    n_m: usize,
    v_m: usize,
    k: usize,
    n_e: usize,
    v_e: usize,
    h: usize,
    q: usize,
    c: f64,
) -> f64 {
    ((2 * n_m * v_m + k * n_e * v_e) * h * q) as f64 * c
}

/// The cap with the paper's exact parameter setting.
pub fn paper_cost_cap() -> f64 {
    cost_cap(29, 3, 20, 5, 7, 2, 10, 0.02)
}

/// Proposition 3's upper bound on total crowd time:
/// `t_c <= t_a · (2·k·q1 + 20·n·q2)` where `t_a` is the average time to
/// label one pair, `k` the active-learning iteration cap, `q1` pairs per
/// AL iteration, `n` the number of rules evaluated, and `q2` pairs per
/// rule-evaluation iteration (the 20 comes from Proposition 2's bound on
/// iterations per rule).
pub fn crowd_time_bound(t_a: Duration, k: usize, q1: usize, n: usize, q2: usize) -> Duration {
    t_a * (2 * k * q1 + 20 * n * q2) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{GroundTruth, OracleCrowd, RandomWorkerCrowd, UnreliableCrowd};

    fn truth() -> GroundTruth {
        GroundTruth::new([(0, 0), (1, 1)])
    }

    #[test]
    fn ledger_accounts_batches() {
        let crowd = RandomWorkerCrowd::new(truth(), 0.0, 5);
        let mut s = CrowdSession::new(crowd);
        let pairs: Vec<IdPair> = (0..20).map(|i| (i, i)).collect();
        let (labels, latency) = s.label_batch(&pairs);
        assert_eq!(labels.len(), 20);
        assert!(labels[0].1); // (0,0) is a match
        assert!(!labels[5].1);
        let l = s.ledger();
        assert_eq!(l.questions, 20);
        assert_eq!(l.answers, 60); // 3 votes each
        assert_eq!(l.lost_answers, 0);
        assert_eq!(l.hits, 2); // 20 questions / 10 per HIT
        assert_eq!(l.rounds, 1);
        assert!((l.cost - 60.0 * 0.02).abs() < 1e-9);
        assert_eq!(l.crowd_time, latency);
    }

    #[test]
    fn strong_majority_batch_uses_three_answers_when_unanimous() {
        let mut s = CrowdSession::new(OracleCrowd::new(truth()));
        let (_, _) = s.label_batch_strong(&[(0, 0), (0, 1)]);
        assert_eq!(s.ledger().answers, 6);
        assert_eq!(s.ledger().cost, 0.0); // oracle is free
    }

    #[test]
    fn paper_cost_cap_is_349_60() {
        assert!((paper_cost_cap() - 349.60).abs() < 1e-9);
    }

    #[test]
    fn proposition3_bound_dominates_observed_crowd_time() {
        // With the paper's parameters and t_a = 9s/pair (1.5 min per
        // 10-question HIT), the bound is about 9·(2·30·20 + 20·20·20)
        // = 9·9200s ≈ 23h — and any actual capped run stays below it.
        let bound = crowd_time_bound(Duration::from_secs(9), 30, 20, 20, 20);
        assert_eq!(bound, Duration::from_secs(9 * 9200));
        // An actual session: 30 AL rounds + 20 rules × 5 rounds of latency.
        let per_round = Duration::from_secs(90);
        let actual = per_round * (30 + 20 * 5);
        assert!(actual < bound);
    }

    #[test]
    fn rounds_accumulate_latency() {
        let mut s = CrowdSession::new(OracleCrowd::new(truth()));
        let lat = s.round_latency();
        s.label_batch(&[(0, 0)]);
        s.label_batch(&[(1, 1)]);
        assert_eq!(s.ledger().crowd_time, lat * 2);
        assert_eq!(s.ledger().rounds, 2);
    }

    #[test]
    fn abandonment_costs_latency_but_not_money_and_labels_converge() {
        let reliable = {
            let mut s = CrowdSession::new(OracleCrowd::new(truth()));
            s.label_batch(&[(0, 0), (0, 1), (1, 1)]).0
        };
        let mut s = CrowdSession::new(UnreliableCrowd::new(OracleCrowd::new(truth()), 0.4, 17));
        let (labels, latency) = s.label_batch(&[(0, 0), (0, 1), (1, 1)]);
        assert_eq!(labels, reliable, "re-posting converges to the same labels");
        let l = s.ledger();
        assert!(l.lost_answers > 0, "{l:?}");
        assert!(l.rounds > 1, "re-post waves cost extra rounds: {l:?}");
        assert_eq!(latency, s.round_latency() * l.rounds as u32);
        assert_eq!(l.cost, 0.0, "lost answers are never paid (oracle is free)");
        assert_eq!(l.answers, 9, "3 delivered votes per question");
    }

    #[test]
    fn journaled_batches_replay_without_crowd_questions() {
        let path = std::env::temp_dir().join(format!(
            "falcon-session-replay-{}.journal",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let pairs: Vec<IdPair> = vec![(0, 0), (0, 1), (1, 1)];
        // Uninterrupted baseline: two batches, then a live tail question.
        let make_crowd = || RandomWorkerCrowd::new(truth(), 0.2, 77);
        let (baseline_labels, baseline_tail, baseline_ledger) = {
            let mut s = CrowdSession::new(make_crowd());
            let a = s.label_batch(&pairs).0;
            let b = s.label_batch_strong(&pairs).0;
            let tail = s.label_batch(&[(1, 0)]).0;
            (vec![a, b], tail, s.ledger())
        };
        // Journaled run: label two batches, "crash".
        {
            let journal = CrowdJournal::open(&path).expect("open");
            let mut s = CrowdSession::new(make_crowd()).with_journal(journal);
            s.label_batch(&pairs);
            s.label_batch_strong(&pairs);
        }
        // Resumed run: the two batches replay (fast-forwarding the seeded
        // crowd), then the tail question goes live — and everything is
        // bit-identical to the uninterrupted run.
        let journal = CrowdJournal::open(&path).expect("reopen");
        assert_eq!(journal.pending_batches(), 2);
        let mut s = CrowdSession::new(make_crowd()).with_journal(journal);
        let a = s.label_batch(&pairs).0;
        let b = s.label_batch_strong(&pairs).0;
        assert_eq!(
            s.journal().map(CrowdJournal::replayed_batches),
            Some(2),
            "both batches must come from the journal"
        );
        let tail = s.label_batch(&[(1, 0)]).0;
        assert_eq!(vec![a, b], baseline_labels);
        assert_eq!(tail, baseline_tail);
        assert_eq!(s.ledger(), baseline_ledger);
        assert!(s.journal_error().is_none());
        std::fs::remove_file(&path).ok();
    }
}
