//! Simulated crowds backed by ground truth.

use crate::Crowd;
use falcon_table::IdPair;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::time::Duration;

/// Ground truth: the set of matching pairs.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    matches: HashSet<IdPair>,
}

impl GroundTruth {
    /// Build from an iterator of matching pairs.
    pub fn new(matches: impl IntoIterator<Item = IdPair>) -> Self {
        Self {
            matches: matches.into_iter().collect(),
        }
    }

    /// True iff the pair is a real match.
    pub fn is_match(&self, pair: IdPair) -> bool {
        self.matches.contains(&pair)
    }

    /// Number of true matches.
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// True iff there are no matches.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }

    /// Iterate over all matching pairs.
    pub fn iter(&self) -> impl Iterator<Item = &IdPair> {
        self.matches.iter()
    }
}

/// Perfect crowd: always answers the truth. Zero-cost MTurk-latency crowd
/// for isolating machine-side behaviour in tests.
pub struct OracleCrowd {
    truth: GroundTruth,
    latency: Duration,
}

impl OracleCrowd {
    /// Oracle with MTurk-like latency (1.5 min per round).
    pub fn new(truth: GroundTruth) -> Self {
        Self {
            truth,
            latency: Duration::from_secs(90),
        }
    }

    /// Override round latency.
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }
}

impl Crowd for OracleCrowd {
    fn answer(&self, pair: IdPair) -> bool {
        self.truth.is_match(pair)
    }
    fn latency_per_round(&self) -> Duration {
        self.latency
    }
    fn cost_per_answer(&self) -> f64 {
        0.0
    }
    fn name(&self) -> &str {
        "oracle"
    }
}

/// The paper's random-worker model (Section 11.4): each individual answer
/// is flipped with probability `error_rate`. MTurk pricing ($0.02/answer)
/// and latency (1.5 min per 10-question HIT round) by default.
pub struct RandomWorkerCrowd {
    truth: GroundTruth,
    error_rate: f64,
    latency: Duration,
    cost_per_answer: f64,
    rng: Mutex<SmallRng>,
}

impl RandomWorkerCrowd {
    /// Create with a fixed per-answer error rate and RNG seed.
    pub fn new(truth: GroundTruth, error_rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&error_rate));
        Self {
            truth,
            error_rate,
            latency: Duration::from_secs(90),
            cost_per_answer: 0.02,
            rng: Mutex::new(SmallRng::seed_from_u64(seed)),
        }
    }

    /// Override round latency.
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }
}

impl Crowd for RandomWorkerCrowd {
    fn answer(&self, pair: IdPair) -> bool {
        let truth = self.truth.is_match(pair);
        let flip = self.rng.lock().gen_bool(self.error_rate);
        truth ^ flip
    }
    fn latency_per_round(&self) -> Duration {
        self.latency
    }
    fn cost_per_answer(&self) -> f64 {
        self.cost_per_answer
    }
    fn name(&self) -> &str {
        "random-worker"
    }
}

/// In-house expert "crowd of one" (the drug-matching deployment of Section
/// 11.1): near-perfect answers, no marginal cost, much lower latency.
pub struct ExpertCrowd {
    inner: RandomWorkerCrowd,
}

impl ExpertCrowd {
    /// Expert with a small error rate (default 1%) and ~12 s per round
    /// (830 pairs in 1h 37m in the paper's deployment).
    pub fn new(truth: GroundTruth, seed: u64) -> Self {
        let mut inner = RandomWorkerCrowd::new(truth, 0.01, seed);
        inner.latency = Duration::from_secs(12);
        inner.cost_per_answer = 0.0;
        Self { inner }
    }
}

impl Crowd for ExpertCrowd {
    fn answer(&self, pair: IdPair) -> bool {
        self.inner.answer(pair)
    }
    fn latency_per_round(&self) -> Duration {
        self.inner.latency
    }
    fn cost_per_answer(&self) -> f64 {
        0.0
    }
    fn name(&self) -> &str {
        "expert"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> GroundTruth {
        GroundTruth::new([(0, 0), (1, 1), (2, 2)])
    }

    #[test]
    fn oracle_is_perfect() {
        let c = OracleCrowd::new(truth());
        assert!(c.answer((0, 0)));
        assert!(!c.answer((0, 1)));
        assert_eq!(c.cost_per_answer(), 0.0);
    }

    #[test]
    fn zero_error_random_crowd_is_oracle() {
        let c = RandomWorkerCrowd::new(truth(), 0.0, 1);
        for pair in [(0, 0), (1, 1), (0, 2), (9, 9)] {
            assert_eq!(c.answer(pair), truth().is_match(pair));
        }
    }

    #[test]
    fn full_error_crowd_always_lies() {
        let c = RandomWorkerCrowd::new(truth(), 1.0, 1);
        assert!(!c.answer((0, 0)));
        assert!(c.answer((0, 1)));
    }

    #[test]
    fn error_rate_is_approximately_respected() {
        let c = RandomWorkerCrowd::new(truth(), 0.2, 42);
        let n = 10_000;
        let wrong = (0..n).filter(|_| c.answer((0, 1))).count();
        let rate = wrong as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.03, "observed error rate {rate}");
    }

    #[test]
    fn expert_is_cheap_and_fast() {
        let c = ExpertCrowd::new(truth(), 3);
        assert_eq!(c.cost_per_answer(), 0.0);
        assert!(c.latency_per_round() < Duration::from_secs(60));
    }
}
