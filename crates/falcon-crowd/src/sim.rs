//! Simulated crowds backed by ground truth.

use crate::Crowd;
use falcon_table::IdPair;
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Ground truth: the set of matching pairs.
#[derive(Debug, Clone, Default)]
pub struct GroundTruth {
    matches: HashSet<IdPair>,
}

impl GroundTruth {
    /// Build from an iterator of matching pairs.
    pub fn new(matches: impl IntoIterator<Item = IdPair>) -> Self {
        Self {
            matches: matches.into_iter().collect(),
        }
    }

    /// True iff the pair is a real match.
    pub fn is_match(&self, pair: IdPair) -> bool {
        self.matches.contains(&pair)
    }

    /// Number of true matches.
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// True iff there are no matches.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }

    /// Iterate over all matching pairs.
    pub fn iter(&self) -> impl Iterator<Item = &IdPair> {
        self.matches.iter()
    }
}

/// Perfect crowd: always answers the truth. Zero-cost MTurk-latency crowd
/// for isolating machine-side behaviour in tests.
pub struct OracleCrowd {
    truth: GroundTruth,
    latency: Duration,
}

impl OracleCrowd {
    /// Oracle with MTurk-like latency (1.5 min per round).
    pub fn new(truth: GroundTruth) -> Self {
        Self {
            truth,
            latency: Duration::from_secs(90),
        }
    }

    /// Override round latency.
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }
}

impl Crowd for OracleCrowd {
    fn answer(&self, pair: IdPair) -> bool {
        self.truth.is_match(pair)
    }
    fn latency_per_round(&self) -> Duration {
        self.latency
    }
    fn cost_per_answer(&self) -> f64 {
        0.0
    }
    fn name(&self) -> &str {
        "oracle"
    }
}

/// The paper's random-worker model (Section 11.4): each individual answer
/// is flipped with probability `error_rate`. MTurk pricing ($0.02/answer)
/// and latency (1.5 min per 10-question HIT round) by default.
pub struct RandomWorkerCrowd {
    truth: GroundTruth,
    error_rate: f64,
    latency: Duration,
    cost_per_answer: f64,
    rng: Mutex<SmallRng>,
}

impl RandomWorkerCrowd {
    /// Create with a fixed per-answer error rate and RNG seed.
    pub fn new(truth: GroundTruth, error_rate: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&error_rate));
        Self {
            truth,
            error_rate,
            latency: Duration::from_secs(90),
            cost_per_answer: 0.02,
            rng: Mutex::new(SmallRng::seed_from_u64(seed)),
        }
    }

    /// Override round latency.
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }
}

impl Crowd for RandomWorkerCrowd {
    fn answer(&self, pair: IdPair) -> bool {
        let truth = self.truth.is_match(pair);
        let flip = self.rng.lock().gen_bool(self.error_rate);
        truth ^ flip
    }
    fn fast_forward(&self, draws: usize) {
        // One error draw per answer: consume exactly what `answer` would.
        let mut rng = self.rng.lock();
        for _ in 0..draws {
            let _ = rng.gen_bool(self.error_rate);
        }
    }
    fn latency_per_round(&self) -> Duration {
        self.latency
    }
    fn cost_per_answer(&self) -> f64 {
        self.cost_per_answer
    }
    fn name(&self) -> &str {
        "random-worker"
    }
}

/// In-house expert "crowd of one" (the drug-matching deployment of Section
/// 11.1): near-perfect answers, no marginal cost, much lower latency.
pub struct ExpertCrowd {
    inner: RandomWorkerCrowd,
}

impl ExpertCrowd {
    /// Expert with a small error rate (default 1%) and ~12 s per round
    /// (830 pairs in 1h 37m in the paper's deployment).
    pub fn new(truth: GroundTruth, seed: u64) -> Self {
        let mut inner = RandomWorkerCrowd::new(truth, 0.01, seed);
        inner.latency = Duration::from_secs(12);
        inner.cost_per_answer = 0.0;
        Self { inner }
    }
}

impl Crowd for ExpertCrowd {
    fn answer(&self, pair: IdPair) -> bool {
        self.inner.answer(pair)
    }
    fn fast_forward(&self, draws: usize) {
        self.inner.fast_forward(draws);
    }
    fn latency_per_round(&self) -> Duration {
        self.inner.latency
    }
    fn cost_per_answer(&self) -> f64 {
        0.0
    }
    fn name(&self) -> &str {
        "expert"
    }
}

/// A crowd whose workers sometimes never answer: each [`Crowd::try_answer`]
/// is *lost* with probability `loss_rate` (the HIT expired, the worker
/// abandoned it, or the result never came back). Wraps any inner crowd;
/// the loss decision is drawn from its own seeded RNG, so runs are
/// reproducible. Voting layers re-post lost questions
/// ([`crate::vote::majority_with_policy`]) — the MTurk analogue of
/// re-posting an expired HIT for fresh workers.
pub struct UnreliableCrowd<C: Crowd> {
    inner: C,
    loss_rate: f64,
    rng: Mutex<SmallRng>,
    lost: AtomicUsize,
}

impl<C: Crowd> UnreliableCrowd<C> {
    /// Wrap `inner`, losing each answer with probability `loss_rate`
    /// (must be `< 1` — a crowd that never answers can never converge).
    pub fn new(inner: C, loss_rate: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&loss_rate),
            "loss_rate must be in [0, 1)"
        );
        Self {
            inner,
            loss_rate,
            rng: Mutex::new(SmallRng::seed_from_u64(seed)),
            lost: AtomicUsize::new(0),
        }
    }

    /// Answers lost so far (live draws only; fast-forwarded losses from a
    /// journal replay are not re-counted).
    pub fn lost_count(&self) -> usize {
        self.lost.load(Ordering::Relaxed)
    }

    /// The wrapped crowd.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: Crowd> Crowd for UnreliableCrowd<C> {
    fn answer(&self, pair: IdPair) -> bool {
        // A plain `answer` models a caller willing to re-post forever.
        loop {
            if let Some(a) = self.try_answer(pair) {
                return a;
            }
        }
    }
    fn try_answer(&self, pair: IdPair) -> Option<bool> {
        let lost = self.rng.lock().gen_bool(self.loss_rate);
        if lost {
            self.lost.fetch_add(1, Ordering::Relaxed);
            None
        } else {
            Some(self.inner.answer(pair))
        }
    }
    fn fast_forward(&self, draws: usize) {
        // Re-draw the loss sequence; the inner crowd only consumed state
        // for the draws that were actually delivered.
        let delivered = {
            let mut rng = self.rng.lock();
            (0..draws).filter(|_| !rng.gen_bool(self.loss_rate)).count()
        };
        self.inner.fast_forward(delivered);
    }
    fn latency_per_round(&self) -> Duration {
        self.inner.latency_per_round()
    }
    fn cost_per_answer(&self) -> f64 {
        self.inner.cost_per_answer()
    }
    fn name(&self) -> &str {
        "unreliable"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn truth() -> GroundTruth {
        GroundTruth::new([(0, 0), (1, 1), (2, 2)])
    }

    #[test]
    fn oracle_is_perfect() {
        let c = OracleCrowd::new(truth());
        assert!(c.answer((0, 0)));
        assert!(!c.answer((0, 1)));
        assert_eq!(c.cost_per_answer(), 0.0);
    }

    #[test]
    fn zero_error_random_crowd_is_oracle() {
        let c = RandomWorkerCrowd::new(truth(), 0.0, 1);
        for pair in [(0, 0), (1, 1), (0, 2), (9, 9)] {
            assert_eq!(c.answer(pair), truth().is_match(pair));
        }
    }

    #[test]
    fn full_error_crowd_always_lies() {
        let c = RandomWorkerCrowd::new(truth(), 1.0, 1);
        assert!(!c.answer((0, 0)));
        assert!(c.answer((0, 1)));
    }

    #[test]
    fn error_rate_is_approximately_respected() {
        let c = RandomWorkerCrowd::new(truth(), 0.2, 42);
        let n = 10_000;
        let wrong = (0..n).filter(|_| c.answer((0, 1))).count();
        let rate = wrong as f64 / n as f64;
        assert!((rate - 0.2).abs() < 0.03, "observed error rate {rate}");
    }

    #[test]
    fn expert_is_cheap_and_fast() {
        let c = ExpertCrowd::new(truth(), 3);
        assert_eq!(c.cost_per_answer(), 0.0);
        assert!(c.latency_per_round() < Duration::from_secs(60));
    }

    #[test]
    fn unreliable_crowd_loses_answers_at_the_configured_rate() {
        let c = UnreliableCrowd::new(OracleCrowd::new(truth()), 0.3, 7);
        let n = 10_000;
        let lost = (0..n).filter(|_| c.try_answer((0, 0)).is_none()).count();
        let rate = lost as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.03, "observed loss rate {rate}");
        assert_eq!(c.lost_count(), lost);
        // Delivered answers are the inner crowd's.
        assert!(c.try_answer((0, 1)).into_iter().all(|a| !a));
    }

    #[test]
    fn unreliable_answer_retries_until_delivered() {
        let c = UnreliableCrowd::new(OracleCrowd::new(truth()), 0.9, 11);
        for _ in 0..50 {
            assert!(c.answer((1, 1)));
        }
    }

    #[test]
    fn fast_forward_reaches_the_same_rng_state_as_live_draws() {
        let truth = truth();
        let make = || UnreliableCrowd::new(RandomWorkerCrowd::new(truth.clone(), 0.2, 5), 0.25, 9);
        // Live: consume 100 try_answer draws, then observe a tail.
        let live = make();
        for _ in 0..100 {
            let _ = live.try_answer((0, 0));
        }
        let live_tail: Vec<Option<bool>> = (0..50).map(|_| live.try_answer((1, 1))).collect();
        // Fast-forwarded: skip the same 100 draws without answering.
        let ff = make();
        ff.fast_forward(100);
        let ff_tail: Vec<Option<bool>> = (0..50).map(|_| ff.try_answer((1, 1))).collect();
        assert_eq!(live_tail, ff_tail);
    }
}
