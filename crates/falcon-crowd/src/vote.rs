//! Voting schemes over repeated crowd answers, including re-posting of
//! lost answers and escalation on no-consensus.

use crate::session::RepostPolicy;
use crate::Crowd;
use falcon_table::IdPair;

/// Outcome of voting on one question.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vote {
    /// The decided label.
    pub label: bool,
    /// Number of answers actually delivered.
    pub answers: usize,
    /// Answers lost to worker timeouts/abandonment (each forced a re-post).
    pub lost: usize,
    /// True when the base votes ended without consensus and extra
    /// escalation votes were requested.
    pub escalated: bool,
}

/// Collect one delivered answer, re-posting lost ones while the per-
/// question repost budget lasts. `None` means the budget ran out.
fn collect_one(
    crowd: &impl Crowd,
    pair: IdPair,
    reposts_left: &mut usize,
    lost: &mut usize,
) -> Option<bool> {
    loop {
        match crowd.try_answer(pair) {
            Some(a) => return Some(a),
            None => {
                *lost += 1;
                if *reposts_left == 0 {
                    return None;
                }
                *reposts_left -= 1;
            }
        }
    }
}

/// Break a tie with up to `escalation_votes` extra answers from fresh
/// workers (the paper's substrate re-posts a no-consensus HIT with a
/// higher assignment count). Returns true when escalation was attempted.
fn escalate(
    crowd: &impl Crowd,
    pair: IdPair,
    policy: &RepostPolicy,
    reposts_left: &mut usize,
    pos: &mut usize,
    neg: &mut usize,
    lost: &mut usize,
) -> bool {
    if *pos != *neg {
        return false;
    }
    for _ in 0..policy.escalation_votes {
        if *pos != *neg {
            break;
        }
        match collect_one(crowd, pair, reposts_left, lost) {
            Some(true) => *pos += 1,
            Some(false) => *neg += 1,
            None => break,
        }
    }
    true
}

/// Simple majority over `n` answers (the paper's `v_m = 3` scheme for
/// `al_matcher`). `n` should be odd. Lost answers are re-posted within
/// `policy.max_reposts`; if the delivered answers end in a tie (possible
/// only when answers were lost or `n` is even), up to
/// `policy.escalation_votes` extra votes break it; a surviving tie labels
/// `false` (don't pay for an uncertain match).
///
/// With a lossless crowd and odd `n` this asks *exactly* the same
/// question sequence as the pre-fault-model implementation, so seeded
/// simulated runs are unchanged.
pub fn majority_with_policy(
    crowd: &impl Crowd,
    pair: IdPair,
    n: usize,
    policy: &RepostPolicy,
) -> Vote {
    let n = n.max(1);
    let mut reposts_left = policy.max_reposts;
    let mut lost = 0usize;
    let mut pos = 0usize;
    let mut neg = 0usize;
    for _ in 0..n {
        match collect_one(crowd, pair, &mut reposts_left, &mut lost) {
            Some(true) => pos += 1,
            Some(false) => neg += 1,
            None => break,
        }
    }
    let escalated = escalate(
        crowd,
        pair,
        policy,
        &mut reposts_left,
        &mut pos,
        &mut neg,
        &mut lost,
    );
    Vote {
        label: pos > neg,
        answers: pos + neg,
        lost,
        escalated,
    }
}

/// [`majority_with_policy`] with the default [`RepostPolicy`].
pub fn majority(crowd: &impl Crowd, pair: IdPair, n: usize) -> Vote {
    majority_with_policy(crowd, pair, n, &RepostPolicy::default())
}

/// Corleone's strong-majority scheme used by `eval_rules` (`v_e = 7`):
/// collect three answers; keep collecting one at a time until one side
/// leads by at least two, or `max` answers (7) have been collected; the
/// final label is the simple majority. Lost answers are re-posted and
/// ties escalated exactly as in [`majority_with_policy`].
pub fn strong_majority_with_policy(
    crowd: &impl Crowd,
    pair: IdPair,
    max: usize,
    policy: &RepostPolicy,
) -> Vote {
    let max = max.max(3);
    let mut reposts_left = policy.max_reposts;
    let mut lost = 0usize;
    let mut pos = 0usize;
    let mut neg = 0usize;
    let mut budget_dry = false;
    for _ in 0..3 {
        match collect_one(crowd, pair, &mut reposts_left, &mut lost) {
            Some(true) => pos += 1,
            Some(false) => neg += 1,
            None => {
                budget_dry = true;
                break;
            }
        }
    }
    while !budget_dry && pos.abs_diff(neg) < 2 && pos + neg < max {
        match collect_one(crowd, pair, &mut reposts_left, &mut lost) {
            Some(true) => pos += 1,
            Some(false) => neg += 1,
            None => budget_dry = true,
        }
    }
    let escalated = escalate(
        crowd,
        pair,
        policy,
        &mut reposts_left,
        &mut pos,
        &mut neg,
        &mut lost,
    );
    Vote {
        label: pos > neg,
        answers: pos + neg,
        lost,
        escalated,
    }
}

/// [`strong_majority_with_policy`] with the default [`RepostPolicy`].
pub fn strong_majority(crowd: &impl Crowd, pair: IdPair, max: usize) -> Vote {
    strong_majority_with_policy(crowd, pair, max, &RepostPolicy::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{GroundTruth, OracleCrowd, RandomWorkerCrowd, UnreliableCrowd};

    fn truth() -> GroundTruth {
        GroundTruth::new([(1, 1)])
    }

    #[test]
    fn majority_with_oracle() {
        let c = OracleCrowd::new(truth());
        let v = majority(&c, (1, 1), 3);
        assert!(v.label);
        assert_eq!(v.answers, 3);
        assert_eq!(v.lost, 0);
        assert!(!v.escalated);
        assert!(!majority(&c, (0, 1), 3).label);
    }

    #[test]
    fn strong_majority_unanimous_stops_at_three() {
        let c = OracleCrowd::new(truth());
        let v = strong_majority(&c, (1, 1), 7);
        assert_eq!(v.answers, 3);
        assert!(v.label);
    }

    #[test]
    fn strong_majority_caps_at_max() {
        // A maximally-confusing crowd: alternates answers.
        struct Alternating(std::sync::atomic::AtomicUsize);
        impl Crowd for Alternating {
            fn answer(&self, _: IdPair) -> bool {
                self.0
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                    .is_multiple_of(2)
            }
            fn latency_per_round(&self) -> std::time::Duration {
                std::time::Duration::ZERO
            }
            fn cost_per_answer(&self) -> f64 {
                0.0
            }
            fn name(&self) -> &str {
                "alt"
            }
        }
        let c = Alternating(Default::default());
        let v = strong_majority(&c, (0, 0), 7);
        assert_eq!(v.answers, 7);
        assert!(!v.escalated, "7 odd answers cannot tie");
    }

    #[test]
    fn majority_beats_single_answer_under_noise() {
        // With 20% error, majority-of-3 error rate is ~10%; check that over
        // many trials majority is more accurate than single answers.
        let c = RandomWorkerCrowd::new(truth(), 0.2, 7);
        let trials = 2000;
        let single_ok = (0..trials).filter(|_| c.answer((1, 1))).count();
        let maj_ok = (0..trials)
            .filter(|_| majority(&c, (1, 1), 3).label)
            .count();
        assert!(maj_ok > single_ok, "{maj_ok} vs {single_ok}");
    }

    #[test]
    fn even_n_majority_requires_strict_majority() {
        let c = OracleCrowd::new(truth());
        // n=1 trivially works.
        assert!(majority(&c, (1, 1), 1).label);
        assert_eq!(majority(&c, (1, 1), 0).answers, 1);
    }

    #[test]
    fn lost_answers_are_reposted_to_the_same_label() {
        // An abandoning crowd over a perfect oracle: votes converge to the
        // oracle's labels anyway, they just cost re-posts.
        let c = UnreliableCrowd::new(OracleCrowd::new(truth()), 0.4, 21);
        for _ in 0..200 {
            let v = majority(&c, (1, 1), 3);
            assert!(v.label);
            assert_eq!(v.answers, 3, "all three votes eventually delivered");
        }
        let v = majority(&c, (0, 1), 3);
        assert!(!v.label);
        assert!(c.lost_count() > 0, "the crowd did abandon along the way");
    }

    #[test]
    fn exhausted_repost_budget_escalates_then_defaults_negative() {
        // A crowd that never answers within the budget: zero delivered
        // votes is a 0-0 tie; escalation also dies; label must be false.
        struct Void;
        impl Crowd for Void {
            fn answer(&self, _: IdPair) -> bool {
                unreachable!("try_answer never delivers")
            }
            fn try_answer(&self, _: IdPair) -> Option<bool> {
                None
            }
            fn latency_per_round(&self) -> std::time::Duration {
                std::time::Duration::ZERO
            }
            fn cost_per_answer(&self) -> f64 {
                0.0
            }
            fn name(&self) -> &str {
                "void"
            }
        }
        let policy = RepostPolicy {
            max_reposts: 5,
            escalation_votes: 3,
        };
        let v = majority_with_policy(&Void, (1, 1), 3, &policy);
        assert!(!v.label);
        assert_eq!(v.answers, 0);
        assert!(v.escalated);
        // Initial post + 5 budgeted re-posts in the base vote, plus one
        // more lost attempt when escalation tries to break the tie.
        assert_eq!(v.lost, 7);
    }

    #[test]
    fn lossless_policy_voting_matches_legacy_draw_sequence() {
        // Same seed, same questions: the policy-aware path must consume
        // exactly the same RNG draws as the pre-fault-model scheme.
        let a = RandomWorkerCrowd::new(truth(), 0.3, 99);
        let b = RandomWorkerCrowd::new(truth(), 0.3, 99);
        for i in 0..100u32 {
            let pair = (i, i);
            let legacy = {
                // Inline the legacy scheme: n fixed answers, 2·pos > n.
                let n = 3;
                let pos = (0..n).filter(|_| a.answer(pair)).count();
                (pos * 2 > n, n)
            };
            let v = majority(&b, pair, 3);
            assert_eq!((v.label, v.answers), legacy, "question {i}");
        }
    }
}
