//! Voting schemes over repeated crowd answers.

use crate::Crowd;
use falcon_table::IdPair;

/// Outcome of voting on one question.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Vote {
    /// The decided label.
    pub label: bool,
    /// Number of answers collected.
    pub answers: usize,
}

/// Simple majority over `n` answers (the paper's `v_m = 3` scheme for
/// `al_matcher`). `n` should be odd.
pub fn majority(crowd: &impl Crowd, pair: IdPair, n: usize) -> Vote {
    let n = n.max(1);
    let pos = (0..n).filter(|_| crowd.answer(pair)).count();
    Vote {
        label: 2 * pos > n,
        answers: n,
    }
}

/// Corleone's strong-majority scheme used by `eval_rules` (`v_e = 7`):
/// collect three answers; keep collecting one at a time until one side
/// leads by at least two, or `max` answers (7) have been collected; the
/// final label is the simple majority.
pub fn strong_majority(crowd: &impl Crowd, pair: IdPair, max: usize) -> Vote {
    let max = max.max(3);
    let mut pos = 0usize;
    let mut neg = 0usize;
    for _ in 0..3 {
        if crowd.answer(pair) {
            pos += 1;
        } else {
            neg += 1;
        }
    }
    while pos.abs_diff(neg) < 2 && pos + neg < max {
        if crowd.answer(pair) {
            pos += 1;
        } else {
            neg += 1;
        }
    }
    Vote {
        label: pos > neg,
        answers: pos + neg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{GroundTruth, OracleCrowd, RandomWorkerCrowd};

    fn truth() -> GroundTruth {
        GroundTruth::new([(1, 1)])
    }

    #[test]
    fn majority_with_oracle() {
        let c = OracleCrowd::new(truth());
        let v = majority(&c, (1, 1), 3);
        assert!(v.label);
        assert_eq!(v.answers, 3);
        assert!(!majority(&c, (0, 1), 3).label);
    }

    #[test]
    fn strong_majority_unanimous_stops_at_three() {
        let c = OracleCrowd::new(truth());
        let v = strong_majority(&c, (1, 1), 7);
        assert_eq!(v.answers, 3);
        assert!(v.label);
    }

    #[test]
    fn strong_majority_caps_at_max() {
        // A maximally-confusing crowd: alternates answers.
        struct Alternating(std::sync::atomic::AtomicUsize);
        impl Crowd for Alternating {
            fn answer(&self, _: IdPair) -> bool {
                self.0
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                    .is_multiple_of(2)
            }
            fn latency_per_round(&self) -> std::time::Duration {
                std::time::Duration::ZERO
            }
            fn cost_per_answer(&self) -> f64 {
                0.0
            }
            fn name(&self) -> &str {
                "alt"
            }
        }
        let c = Alternating(Default::default());
        let v = strong_majority(&c, (0, 0), 7);
        assert_eq!(v.answers, 7);
    }

    #[test]
    fn majority_beats_single_answer_under_noise() {
        // With 20% error, majority-of-3 error rate is ~10%; check that over
        // many trials majority is more accurate than single answers.
        let c = RandomWorkerCrowd::new(truth(), 0.2, 7);
        let trials = 2000;
        let single_ok = (0..trials).filter(|_| c.answer((1, 1))).count();
        let maj_ok = (0..trials)
            .filter(|_| majority(&c, (1, 1), 3).label)
            .count();
        assert!(maj_ok > single_ok, "{maj_ok} vs {single_ok}");
    }

    #[test]
    fn even_n_majority_requires_strict_majority() {
        let c = OracleCrowd::new(truth());
        // n=1 trivially works.
        assert!(majority(&c, (1, 1), 1).label);
        assert_eq!(majority(&c, (1, 1), 0).answers, 1);
    }
}
