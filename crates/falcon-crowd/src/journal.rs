//! The crowd-label checkpoint journal: a versioned, append-only on-disk
//! log of every labeled batch and every operator boundary, written after
//! each batch so a crashed run never re-spends a crowd question.
//!
//! # Format (`falcon-journal v1`)
//!
//! A plain text file, one record per line:
//!
//! ```text
//! falcon-journal v1
//! op <label>
//! batch <scheme> <n>
//! q <a> <b> <0|1> <answers> <lost>
//! end <rounds> <escalations> <latency_nanos>
//! ```
//!
//! * `op` marks an operator boundary (driver progress marker).
//! * `batch` opens a labeled batch: voting `scheme` (`maj`/`strong`) and
//!   question count `n`, followed by exactly `n` `q` lines — pair ids,
//!   decided label, delivered answers, lost answers — and one `end` line
//!   with the batch's simulated rounds, escalation count and latency.
//!
//! The writer flushes after every record, so at worst a crash leaves one
//! *truncated* trailing batch; [`CrowdJournal::open`] drops any
//! incomplete tail (truncating the file) and keeps every complete batch
//! for replay. A resumed session replays batches in order — answering
//! from the journal, charging the recorded cost/latency and fast-
//! forwarding the crowd's RNG — and switches to live labeling exactly
//! where the crashed run stopped. If a resumed run ever asks a
//! *different* question than the journal recorded (a diverged
//! configuration), the journal truncates at the divergence point and
//! records the new reality from there.

use falcon_table::IdPair;
use std::collections::VecDeque;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The version line this implementation reads and writes.
const HEADER: &str = "falcon-journal v1";

/// A journal failure: I/O, corruption, or a version this build can't read.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// Underlying filesystem error.
    Io {
        /// Stringified OS error.
        message: String,
    },
    /// A structurally invalid record (not a truncated tail, which is
    /// tolerated — real corruption mid-file).
    Corrupt {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// The file's version line is not one this implementation supports.
    Version {
        /// The version line found.
        found: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io { message } => write!(f, "journal I/O error: {message}"),
            Self::Corrupt { line, message } => {
                write!(f, "journal corrupt at line {line}: {message}")
            }
            Self::Version { found } => {
                write!(
                    f,
                    "unsupported journal version: {found:?} (expected {HEADER:?})"
                )
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        Self::Io {
            message: e.to_string(),
        }
    }
}

/// One labeled question inside a batch record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuestionRecord {
    /// The labeled pair.
    pub pair: IdPair,
    /// The decided label.
    pub label: bool,
    /// Answers delivered for this question.
    pub answers: usize,
    /// Answers lost (each forced a re-post).
    pub lost: usize,
}

/// One labeled batch: everything a resumed session needs to reproduce the
/// batch without touching the crowd.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchRecord {
    /// Voting scheme tag (`"maj"` or `"strong"`).
    pub scheme: String,
    /// The batch's questions, in labeling order.
    pub questions: Vec<QuestionRecord>,
    /// Simulated latency rounds the batch consumed (re-post waves included).
    pub rounds: usize,
    /// Questions whose vote ended in escalation.
    pub escalations: usize,
    /// Simulated crowd latency charged for the batch.
    pub latency: Duration,
}

impl BatchRecord {
    /// Total answers delivered across the batch.
    pub fn answers(&self) -> usize {
        self.questions.iter().map(|q| q.answers).sum()
    }

    /// Total answers lost across the batch.
    pub fn lost(&self) -> usize {
        self.questions.iter().map(|q| q.lost).sum()
    }

    /// Total `try_answer` draws the live batch consumed — what a seeded
    /// crowd must fast-forward by when the batch is replayed.
    pub fn draws(&self) -> usize {
        self.answers() + self.lost()
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Record {
    Op(String),
    Batch(BatchRecord),
}

/// The checkpoint journal: parsed replay queue plus an append handle.
#[derive(Debug)]
pub struct CrowdJournal {
    path: PathBuf,
    file: File,
    /// Byte length of the valid prefix; appends start here.
    end_offset: u64,
    /// Complete records awaiting replay, with their start offsets.
    replay: VecDeque<(u64, Record)>,
    /// Set once a resume diverged from the journal.
    diverged: bool,
    replayed_batches: usize,
}

impl CrowdJournal {
    /// Open (or create) a journal at `path`. An existing file is parsed;
    /// complete records become the replay queue, a truncated trailing
    /// record is discarded (and the file truncated to the valid prefix).
    pub fn open(path: impl AsRef<Path>) -> Result<Self, JournalError> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut text = String::new();
        file.read_to_string(&mut text)?;
        if text.is_empty() {
            file.write_all(HEADER.as_bytes())?;
            file.write_all(b"\n")?;
            file.flush()?;
            let end_offset = HEADER.len() as u64 + 1;
            return Ok(Self {
                path,
                file,
                end_offset,
                replay: VecDeque::new(),
                diverged: false,
                replayed_batches: 0,
            });
        }
        let (replay, valid_len) = parse(&text)?;
        if valid_len < text.len() as u64 {
            file.set_len(valid_len)?;
        }
        Ok(Self {
            path,
            file,
            end_offset: valid_len,
            replay,
            diverged: false,
            replayed_batches: 0,
        })
    }

    /// The journal's file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Batches still queued for replay.
    pub fn pending_batches(&self) -> usize {
        self.replay
            .iter()
            .filter(|(_, r)| matches!(r, Record::Batch(_)))
            .count()
    }

    /// Batches replayed so far this session.
    pub fn replayed_batches(&self) -> usize {
        self.replayed_batches
    }

    /// True when a resumed run asked a different question than the
    /// journal recorded, so the stale tail was discarded.
    pub fn diverged(&self) -> bool {
        self.diverged
    }

    /// Drop the remaining replay queue and truncate the file back to the
    /// first unconsumed record: the resume has diverged from the journal.
    fn truncate_at_front(&mut self) -> Result<(), JournalError> {
        if let Some(&(offset, _)) = self.replay.front() {
            self.file.set_len(offset)?;
            self.end_offset = offset;
        }
        self.replay.clear();
        self.diverged = true;
        Ok(())
    }

    fn append(&mut self, text: &str) -> Result<(), JournalError> {
        self.file.seek(SeekFrom::Start(self.end_offset))?;
        self.file.write_all(text.as_bytes())?;
        self.file.flush()?;
        self.end_offset += text.len() as u64;
        Ok(())
    }

    /// Replay the next batch if it matches the requested scheme and
    /// question list; on mismatch, truncate the journal at the
    /// divergence point and return `None` (the caller labels live).
    pub fn try_replay_batch(
        &mut self,
        scheme: &str,
        pairs: &[IdPair],
    ) -> Result<Option<BatchRecord>, JournalError> {
        // Skip queued op markers: a batch request matches against the
        // next *batch* record (ops are progress decoration).
        while matches!(self.replay.front(), Some((_, Record::Op(_)))) {
            self.replay.pop_front();
        }
        let matches_front = match self.replay.front() {
            Some((_, Record::Batch(b))) => {
                b.scheme == scheme
                    && b.questions.len() == pairs.len()
                    && b.questions.iter().zip(pairs).all(|(q, p)| q.pair == *p)
            }
            _ => false,
        };
        if !matches_front {
            if !self.replay.is_empty() {
                self.truncate_at_front()?;
            }
            return Ok(None);
        }
        match self.replay.pop_front() {
            Some((_, Record::Batch(b))) => {
                self.replayed_batches += 1;
                Ok(Some(b))
            }
            _ => Ok(None),
        }
    }

    /// Append a freshly labeled batch.
    pub fn record_batch(&mut self, batch: &BatchRecord) -> Result<(), JournalError> {
        // A live batch while records are still queued means the caller
        // skipped ahead: the queued tail is stale.
        if !self.replay.is_empty() {
            self.truncate_at_front()?;
        }
        let mut text = format!("batch {} {}\n", batch.scheme, batch.questions.len());
        for q in &batch.questions {
            text.push_str(&format!(
                "q {} {} {} {} {}\n",
                q.pair.0,
                q.pair.1,
                u8::from(q.label),
                q.answers,
                q.lost
            ));
        }
        text.push_str(&format!(
            "end {} {} {}\n",
            batch.rounds,
            batch.escalations,
            batch.latency.as_nanos()
        ));
        self.append(&text)
    }

    /// Force every written record to stable storage (`fsync`). The
    /// writer already flushes after each record, so this adds durability
    /// against OS-level loss — a cancelled gated run calls it before
    /// unwinding so the journal tail survives a subsequent real crash.
    pub fn finalize(&mut self) -> Result<(), JournalError> {
        self.file.flush()?;
        self.file.sync_all()?;
        Ok(())
    }

    /// Record (or replay past) an operator-boundary marker.
    pub fn mark_op(&mut self, label: &str) -> Result<(), JournalError> {
        if let Some((_, Record::Op(queued))) = self.replay.front() {
            if queued == label {
                self.replay.pop_front();
                return Ok(());
            }
            // A different boundary than recorded: stale tail.
            self.truncate_at_front()?;
        }
        if label.chars().any(char::is_whitespace) {
            return Err(JournalError::Corrupt {
                line: 0,
                message: format!("op label {label:?} must not contain whitespace"),
            });
        }
        self.append(&format!("op {label}\n"))
    }
}

fn corrupt(line: usize, message: impl Into<String>) -> JournalError {
    JournalError::Corrupt {
        line,
        message: message.into(),
    }
}

/// Parse journal text into complete records plus the byte length of the
/// valid prefix. A truncated trailing record (no final newline, or a
/// `batch` missing `q`/`end` lines) is excluded from both; anything
/// structurally invalid *before* the tail is an error.
#[allow(clippy::type_complexity)]
fn parse(text: &str) -> Result<(VecDeque<(u64, Record)>, u64), JournalError> {
    // Only lines terminated by '\n' are trusted; a partial last line is
    // crash debris.
    let mut records = VecDeque::new();
    let mut lines = Vec::new(); // (line_no, byte_offset, content)
    let mut offset = 0usize;
    let mut complete_len = 0usize;
    for (i, piece) in text.split_inclusive('\n').enumerate() {
        if piece.ends_with('\n') {
            lines.push((i + 1, offset, piece.trim_end_matches(['\n', '\r'])));
            complete_len = offset + piece.len();
        }
        offset += piece.len();
    }
    let Some(&(_, _, header)) = lines.first() else {
        return Ok((records, 0));
    };
    if header != HEADER {
        return Err(JournalError::Version {
            found: header.to_string(),
        });
    }
    let mut valid_len = lines
        .get(1)
        .map_or(complete_len as u64, |&(_, off, _)| off as u64);
    let mut idx = 1;
    while idx < lines.len() {
        let (line_no, start_off, content) = lines[idx];
        let mut parts = content.split(' ');
        match parts.next() {
            Some("op") => {
                let label = parts
                    .next()
                    .ok_or_else(|| corrupt(line_no, "op without label"))?;
                records.push_back((start_off as u64, Record::Op(label.to_string())));
                idx += 1;
            }
            Some("batch") => {
                let scheme = parts
                    .next()
                    .ok_or_else(|| corrupt(line_no, "batch without scheme"))?
                    .to_string();
                let n: usize = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| corrupt(line_no, "batch without question count"))?;
                // n question lines + the end line must all be present,
                // else this is a truncated tail: stop parsing here.
                if idx + n + 2 > lines.len() {
                    return Ok((records, valid_len));
                }
                let mut questions = Vec::with_capacity(n);
                for k in 0..n {
                    let (qline_no, _, qcontent) = lines[idx + 1 + k];
                    let mut q = qcontent.split(' ');
                    if q.next() != Some("q") {
                        return Err(corrupt(qline_no, "expected a q line"));
                    }
                    let mut num = || -> Result<u64, JournalError> {
                        q.next()
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| corrupt(qline_no, "malformed q line"))
                    };
                    let a = num()? as u32;
                    let b = num()? as u32;
                    let label = num()? != 0;
                    let answers = num()? as usize;
                    let lost = num()? as usize;
                    questions.push(QuestionRecord {
                        pair: (a, b),
                        label,
                        answers,
                        lost,
                    });
                }
                let (eline_no, _, econtent) = lines[idx + 1 + n];
                let mut e = econtent.split(' ');
                if e.next() != Some("end") {
                    return Err(corrupt(eline_no, "expected an end line"));
                }
                let mut num = || -> Result<u128, JournalError> {
                    e.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| corrupt(eline_no, "malformed end line"))
                };
                let rounds = num()? as usize;
                let escalations = num()? as usize;
                let latency_nanos = num()?;
                records.push_back((
                    start_off as u64,
                    Record::Batch(BatchRecord {
                        scheme,
                        questions,
                        rounds,
                        escalations,
                        latency: nanos_to_duration(latency_nanos),
                    }),
                ));
                idx += n + 2;
            }
            _ => return Err(corrupt(line_no, format!("unknown record {content:?}"))),
        }
        valid_len = lines
            .get(idx)
            .map_or(complete_len as u64, |&(_, off, _)| off as u64);
    }
    Ok((records, valid_len))
}

fn nanos_to_duration(nanos: u128) -> Duration {
    let secs = (nanos / 1_000_000_000) as u64;
    let sub = (nanos % 1_000_000_000) as u32;
    Duration::new(secs, sub)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("falcon-journal-tests");
        std::fs::create_dir_all(&dir).expect("tmp dir");
        dir.join(format!("{name}-{}.journal", std::process::id()))
    }

    fn sample_batch(scheme: &str) -> BatchRecord {
        BatchRecord {
            scheme: scheme.to_string(),
            questions: vec![
                QuestionRecord {
                    pair: (1, 2),
                    label: true,
                    answers: 3,
                    lost: 1,
                },
                QuestionRecord {
                    pair: (3, 4),
                    label: false,
                    answers: 3,
                    lost: 0,
                },
            ],
            rounds: 2,
            escalations: 0,
            latency: Duration::from_secs(180),
        }
    }

    #[test]
    fn round_trips_batches_and_ops() {
        let path = tmp("round-trip");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = CrowdJournal::open(&path).expect("open");
            j.mark_op("blocking").expect("op");
            j.record_batch(&sample_batch("maj")).expect("batch");
            j.record_batch(&sample_batch("strong")).expect("batch");
        }
        let mut j = CrowdJournal::open(&path).expect("reopen");
        assert_eq!(j.pending_batches(), 2);
        j.mark_op("blocking").expect("op replays");
        let b = j
            .try_replay_batch("maj", &[(1, 2), (3, 4)])
            .expect("replay")
            .expect("recorded batch");
        assert_eq!(b, sample_batch("maj"));
        assert_eq!(b.draws(), 7);
        assert!(!j.diverged());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_tail_is_dropped_not_fatal() {
        let path = tmp("truncated");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = CrowdJournal::open(&path).expect("open");
            j.record_batch(&sample_batch("maj")).expect("batch");
        }
        // Simulate a crash mid-write: a batch header with no body.
        {
            use std::io::Write as _;
            let mut f = OpenOptions::new().append(true).open(&path).expect("append");
            f.write_all(b"batch maj 5\nq 9 9 1 3 0\n").expect("debris");
        }
        let mut j = CrowdJournal::open(&path).expect("reopen tolerates tail");
        assert_eq!(j.pending_batches(), 1, "only the complete batch survives");
        assert!(j
            .try_replay_batch("maj", &[(1, 2), (3, 4)])
            .expect("replay")
            .is_some());
        // The debris was truncated away on open.
        let text = std::fs::read_to_string(&path).expect("read");
        assert!(!text.contains("9 9"), "{text}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn divergence_truncates_and_switches_to_live() {
        let path = tmp("diverge");
        let _ = std::fs::remove_file(&path);
        {
            let mut j = CrowdJournal::open(&path).expect("open");
            j.record_batch(&sample_batch("maj")).expect("b1");
            j.record_batch(&sample_batch("strong")).expect("b2");
        }
        let mut j = CrowdJournal::open(&path).expect("reopen");
        // First batch replays; the second is asked with different pairs.
        assert!(j
            .try_replay_batch("maj", &[(1, 2), (3, 4)])
            .expect("replay")
            .is_some());
        assert!(j
            .try_replay_batch("strong", &[(7, 8)])
            .expect("divergence is not an error")
            .is_none());
        assert!(j.diverged());
        // The live batch records over the stale tail.
        let fresh = BatchRecord {
            scheme: "strong".to_string(),
            questions: vec![QuestionRecord {
                pair: (7, 8),
                label: true,
                answers: 3,
                lost: 0,
            }],
            rounds: 1,
            escalations: 0,
            latency: Duration::from_secs(90),
        };
        j.record_batch(&fresh).expect("record after divergence");
        drop(j);
        let mut j = CrowdJournal::open(&path).expect("reopen again");
        assert!(j
            .try_replay_batch("maj", &[(1, 2), (3, 4)])
            .expect("replay")
            .is_some());
        let b = j
            .try_replay_batch("strong", &[(7, 8)])
            .expect("replay")
            .expect("fresh batch persisted");
        assert_eq!(b, fresh);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_is_refused() {
        let path = tmp("version");
        std::fs::write(&path, "falcon-journal v99\n").expect("write");
        match CrowdJournal::open(&path) {
            Err(JournalError::Version { found }) => assert_eq!(found, "falcon-journal v99"),
            other => panic!("expected version error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_corruption_is_an_error() {
        let path = tmp("corrupt");
        std::fs::write(
            &path,
            "falcon-journal v1\ngarbage line\nbatch maj 0\nend 1 0 5\n",
        )
        .expect("write");
        match CrowdJournal::open(&path) {
            Err(JournalError::Corrupt { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected corruption error, got {other:?}"),
        }
        std::fs::remove_file(&path).ok();
    }
}
