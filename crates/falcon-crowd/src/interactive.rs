//! An interactive "crowd" backed by a human at a terminal — the paper's
//! Example 1 notes that users who don't want to pay a crowd "can label the
//! tuple pairs themselves". Questions render both tuples side by side
//! (like the MTurk HIT of Figure 8) and read `y`/`n` answers from any
//! `BufRead` (stdin in the examples; a script in tests).
//!
//! Answers are cached per pair so majority-voting schemes don't re-ask a
//! human the same question three times.

use crate::Crowd;
use falcon_table::{IdPair, Table};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{BufRead, Write};
use std::time::Duration;

/// A single human answering questions over an I/O channel.
pub struct InteractiveCrowd<R: BufRead + Send, W: Write + Send> {
    a: Table,
    b: Table,
    state: Mutex<(R, W, HashMap<IdPair, bool>)>,
}

impl<R: BufRead + Send, W: Write + Send> InteractiveCrowd<R, W> {
    /// Create over the two tables being matched and an answer channel.
    pub fn new(a: Table, b: Table, input: R, output: W) -> Self {
        Self {
            a,
            b,
            state: Mutex::new((input, output, HashMap::new())),
        }
    }

    /// Number of distinct questions answered so far.
    pub fn answered(&self) -> usize {
        self.state.lock().2.len()
    }
}

impl<R: BufRead + Send, W: Write + Send> Crowd for InteractiveCrowd<R, W> {
    fn answer(&self, pair: IdPair) -> bool {
        let mut state = self.state.lock();
        if let Some(&cached) = state.2.get(&pair) {
            return cached;
        }
        let answer = loop {
            {
                let (_, out, _) = &mut *state;
                // Rendering failure (closed pipe) defaults to "no match".
                let (a, b) = (&self.a, &self.b);
                let mut render = || -> std::io::Result<()> {
                    writeln!(out, "\n--- Do these records match? (y/n) ---")?;
                    for (side, table, id) in [("A", a, pair.0), ("B", b, pair.1)] {
                        let row = table.get(id).expect("valid id");
                        write!(out, "  {side}: ")?;
                        for (i, attr) in table.schema().attrs().iter().enumerate() {
                            write!(out, "{}={} ", attr.name, row.value(i).render())?;
                        }
                        writeln!(out)?;
                    }
                    write!(out, "> ")?;
                    out.flush()
                };
                if render().is_err() {
                    break false;
                }
            }
            let mut line = String::new();
            let (input, _, _) = &mut *state;
            if input.read_line(&mut line).unwrap_or(0) == 0 {
                break false; // EOF: default to no-match
            }
            match line.trim().to_lowercase().as_str() {
                "y" | "yes" | "1" => break true,
                "n" | "no" | "0" => break false,
                _ => {
                    let (_, out, _) = &mut *state;
                    let _ = writeln!(out, "please answer y or n");
                }
            }
        };
        state.2.insert(pair, answer);
        answer
    }

    fn latency_per_round(&self) -> Duration {
        // A human labels a 20-pair round in a few minutes; the virtual
        // latency only matters for masking accounting.
        Duration::from_secs(120)
    }

    fn cost_per_answer(&self) -> f64 {
        0.0
    }

    fn name(&self) -> &str {
        "interactive"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_table::{AttrType, Schema, Value};
    use std::io::Cursor;

    fn tables() -> (Table, Table) {
        let schema = Schema::new([("name", AttrType::Str)]);
        let a = Table::new(
            "a",
            schema.clone(),
            vec![vec![Value::str("alpha")], vec![Value::str("beta")]],
        );
        let b = Table::new(
            "b",
            schema,
            vec![vec![Value::str("alpha!")], vec![Value::str("gamma")]],
        );
        (a, b)
    }

    #[test]
    fn reads_answers_and_caches() {
        let (a, b) = tables();
        let input = Cursor::new(b"y\nn\n".to_vec());
        let crowd = InteractiveCrowd::new(a, b, input, Vec::new());
        assert!(crowd.answer((0, 0)));
        // Cached: the second read must not consume the "n".
        assert!(crowd.answer((0, 0)));
        assert!(!crowd.answer((1, 1)));
        assert_eq!(crowd.answered(), 2);
    }

    #[test]
    fn retries_on_garbage_then_accepts() {
        let (a, b) = tables();
        let input = Cursor::new(b"maybe\nYES\n".to_vec());
        let crowd = InteractiveCrowd::new(a, b, input, Vec::new());
        assert!(crowd.answer((0, 1)));
    }

    #[test]
    fn eof_defaults_to_no() {
        let (a, b) = tables();
        let input = Cursor::new(Vec::new());
        let crowd = InteractiveCrowd::new(a, b, input, Vec::new());
        assert!(!crowd.answer((0, 0)));
    }

    #[test]
    fn prompt_shows_both_tuples() {
        let (a, b) = tables();
        let input = Cursor::new(b"y\n".to_vec());
        let crowd = InteractiveCrowd::new(a, b, input, Vec::new());
        crowd.answer((0, 0));
        let out = {
            let state = crowd.state.lock();
            String::from_utf8(state.1.clone()).unwrap()
        };
        assert!(out.contains("alpha"));
        assert!(out.contains("alpha!"));
        assert!(out.contains("(y/n)"));
    }
}
