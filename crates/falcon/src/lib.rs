//! # Falcon — hands-off crowdsourced entity matching at scale
//!
//! A Rust reproduction of *"Falcon: Scaling Up Hands-Off Crowdsourced
//! Entity Matching to Build Cloud Services"* (SIGMOD 2017). Given two
//! tables and a crowd (real people in the paper; simulated workers here),
//! Falcon learns blocking rules and a random-forest matcher through
//! crowdsourced active learning — no developer writes a single rule — and
//! executes the whole workflow as an RDBMS-style plan over a MapReduce
//! substrate, masking machine time under crowd time.
//!
//! ```
//! use falcon::prelude::*;
//!
//! // Two dirty tables with known ground truth (synthetic stand-in for
//! // the paper's Products dataset).
//! let data = falcon::datagen::products::generate(0.01, 7);
//! let crowd = OracleCrowd::new(GroundTruth::new(data.truth.iter().copied()));
//!
//! let mut config = FalconConfig::default();
//! config.sample_size = 2_000;
//! config.cluster = ClusterConfig::small(4);
//!
//! let report = Falcon::new(config).run(&data.a, &data.b, crowd);
//! let quality = report.quality(&data.truth);
//! assert!(quality.f1 > 0.0);
//! println!("F1 = {:.3}, cost = ${:.2}", quality.f1, report.ledger.cost);
//! ```
//!
//! The heavy lifting lives in the component crates, re-exported here:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`core`] | `falcon-core` | operators, plans, rules, optimizer, driver |
//! | [`textsim`] | `falcon-textsim` | similarity functions + filter math |
//! | [`table`] | `falcon-table` | tables, schemas, profiling |
//! | [`dataflow`] | `falcon-dataflow` | local MapReduce engine + simulated cluster |
//! | [`forest`] | `falcon-forest` | random forests + rule extraction |
//! | [`index`] | `falcon-index` | blocking indexes + the five filters |
//! | [`crowd`] | `falcon-crowd` | crowd simulation, HITs, voting, ledger |
//! | [`datagen`] | `falcon-datagen` | synthetic Products / Songs / Citations |
//! | [`serve`] | `falcon-serve` | multi-tenant scheduler over a shared node pool |

pub use falcon_core as core;
pub use falcon_crowd as crowd;
pub use falcon_dataflow as dataflow;
pub use falcon_datagen as datagen;
pub use falcon_forest as forest;
pub use falcon_index as index;
pub use falcon_serve as serve;
pub use falcon_table as table;
pub use falcon_textsim as textsim;

/// Everything needed to run Falcon end to end.
pub mod prelude {
    pub use falcon_core::driver::{Falcon, FalconConfig, RunReport};
    pub use falcon_core::metrics::{blocking_recall, em_quality, EmQuality};
    pub use falcon_core::optimizer::OptFlags;
    pub use falcon_core::physical::PhysicalOp;
    pub use falcon_core::plan::PlanKind;
    pub use falcon_crowd::sim::{ExpertCrowd, GroundTruth, OracleCrowd, RandomWorkerCrowd};
    pub use falcon_crowd::{Crowd, CrowdJournal, CrowdSession};
    pub use falcon_dataflow::{Cluster, ClusterConfig, FaultPlan, FaultStats};
    pub use falcon_datagen::EmDataset;
    pub use falcon_serve::{JobSpec, Policy, ServeConfig, ServeReport};
    pub use falcon_table::{Table, Value};
}
