//! Index structures and the five blocking filters of Section 7.4.
//!
//! `apply_blocking_rules` avoids enumerating `A × B` by building indexes
//! over table `A` and probing them with each `B` tuple. This crate provides:
//!
//! * [`scalar`] — hash index (equivalence filter), sorted range index
//!   (range filter) and length index (length filter),
//! * [`inverted`] — global token ordering plus prefix inverted index
//!   (prefix and position filters),
//! * [`spec`] — [`FilterSpec`]: the per-predicate description of which
//!   filters apply, the built [`PredicateIndex`], and the probe routine
//!   (`FindProbableCandidates` of Algorithm 1 in the paper).
//!
//! Every filter is a **necessary** condition for its predicate: probing
//! never misses a tuple that satisfies the predicate (lossless blocking),
//! but may return false positives that the reducer-side rule evaluation
//! weeds out.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bitmap;
pub mod inverted;
pub mod scalar;
pub mod signature;
pub mod spec;

pub use bitmap::CandidateBitmap;
pub use inverted::{PrefixIndex, TokenOrder};
pub use scalar::{HashIndex, LengthIndex, RangeIndex};
pub use signature::{ProbeSig, ProbeStats, SignatureIndex};
pub use spec::{FilterSpec, IndexError, Obligation, PredicateIndex, ProbeMode};
