//! Dense candidate bitmap over `A` tuple ids.
//!
//! Blocking probes produce per-conjunct candidate id sets that must be
//! deduplicated and intersected. Marking ids in a fixed-width bitmap
//! deduplicates for free, intersection is a word-wise AND, and iterating
//! set bits yields the ids already sorted — so the whole
//! union/dedup/intersect pipeline of `candidates_for` runs without a
//! single sort. The buffer is designed for reuse: `reset` keeps the
//! allocation and clears only the words that were actually dirtied.

use falcon_table::TupleId;
use serde::{Deserialize, Serialize};

/// A reusable dense bitmap over tuple ids `0..len`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CandidateBitmap {
    words: Vec<u64>,
    len: usize,
    ones: usize,
    /// Dirty word range `[lo_word, hi_word]` (inclusive); `lo > hi` means
    /// clean. Bounds both `reset` and iteration to the touched region.
    lo_word: usize,
    hi_word: usize,
}

impl CandidateBitmap {
    /// Empty bitmap over `len` ids.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
            ones: 0,
            lo_word: usize::MAX,
            hi_word: 0,
        }
    }

    /// Number of addressable ids.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no id can be stored (zero capacity).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set ids.
    pub fn ones(&self) -> usize {
        self.ones
    }

    /// Clear all bits, keeping the allocation; resizes to `len` ids.
    pub fn reset(&mut self, len: usize) {
        let need = len.div_ceil(64);
        if need > self.words.len() {
            self.words.resize(need, 0);
        } else if self.lo_word <= self.hi_word {
            // Only the dirty range can hold set bits.
            let hi = self.hi_word.min(self.words.len() - 1);
            for w in &mut self.words[self.lo_word..=hi] {
                *w = 0;
            }
        }
        self.len = len;
        self.ones = 0;
        self.lo_word = usize::MAX;
        self.hi_word = 0;
    }

    /// Set `id`'s bit. Out-of-range ids are ignored (they cannot name an
    /// `A` tuple, so dropping them is exact).
    pub fn insert(&mut self, id: TupleId) {
        let i = id as usize;
        if i >= self.len {
            return;
        }
        let (w, b) = (i / 64, 1u64 << (i % 64));
        if self.words[w] & b == 0 {
            self.words[w] |= b;
            self.ones += 1;
            self.lo_word = self.lo_word.min(w);
            self.hi_word = self.hi_word.max(w);
        }
    }

    /// True iff `id` is set.
    pub fn contains(&self, id: TupleId) -> bool {
        let i = id as usize;
        i < self.len && self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Intersect in place with `other` (ids absent there are cleared).
    pub fn intersect(&mut self, other: &CandidateBitmap) {
        if self.lo_word > self.hi_word {
            return; // already empty
        }
        let hi = self.hi_word.min(self.words.len() - 1);
        let mut ones = 0usize;
        for w in self.lo_word..=hi {
            let o = other.words.get(w).copied().unwrap_or(0);
            self.words[w] &= o;
            ones += self.words[w].count_ones() as usize;
        }
        self.ones = ones;
    }

    /// Union in place with `other`. Ids beyond this bitmap's capacity are
    /// dropped (they cannot name an `A` tuple, so dropping them is exact —
    /// mirroring [`CandidateBitmap::insert`]).
    pub fn union_with(&mut self, other: &CandidateBitmap) {
        if other.lo_word > other.hi_word || self.len == 0 {
            return;
        }
        let last = (self.len - 1) / 64;
        let hi = other.hi_word.min(other.words.len() - 1).min(last);
        if other.lo_word > hi {
            return;
        }
        for w in other.lo_word..=hi {
            let mut o = other.words[w];
            if w == last && !self.len.is_multiple_of(64) {
                o &= (1u64 << (self.len % 64)) - 1;
            }
            if o == 0 {
                continue;
            }
            let before = self.words[w];
            let after = before | o;
            if after != before {
                self.ones += (after.count_ones() - before.count_ones()) as usize;
                self.words[w] = after;
                self.lo_word = self.lo_word.min(w);
                self.hi_word = self.hi_word.max(w);
            }
        }
    }

    /// Copy `other`'s contents into this buffer (reusing the allocation).
    pub fn copy_from(&mut self, other: &CandidateBitmap) {
        self.reset(other.len);
        if other.lo_word > other.hi_word {
            return;
        }
        let hi = other.hi_word.min(other.words.len() - 1);
        self.words[other.lo_word..=hi].copy_from_slice(&other.words[other.lo_word..=hi]);
        self.ones = other.ones;
        self.lo_word = other.lo_word;
        self.hi_word = other.hi_word;
    }

    /// Visit every set id in ascending order.
    pub fn for_each(&self, mut f: impl FnMut(TupleId)) {
        if self.lo_word > self.hi_word {
            return;
        }
        let hi = self.hi_word.min(self.words.len() - 1);
        for w in self.lo_word..=hi {
            let mut bits = self.words[w];
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                f((w * 64 + b) as TupleId);
                bits &= bits - 1;
            }
        }
    }

    /// The set ids, ascending, in a fresh vector.
    pub fn to_vec(&self) -> Vec<TupleId> {
        let mut out = Vec::with_capacity(self.ones);
        self.for_each(|id| out.push(id));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedup_and_sorted_iteration() {
        let mut bm = CandidateBitmap::new(200);
        for id in [150, 3, 3, 70, 150, 0] {
            bm.insert(id);
        }
        assert_eq!(bm.ones(), 4);
        assert_eq!(bm.to_vec(), vec![0, 3, 70, 150]);
        assert!(bm.contains(70));
        assert!(!bm.contains(71));
        // Out-of-range insert is a no-op.
        bm.insert(10_000);
        assert_eq!(bm.ones(), 4);
    }

    #[test]
    fn intersect_and_reset_reuse() {
        let mut x = CandidateBitmap::new(130);
        let mut y = CandidateBitmap::new(130);
        for id in [1, 64, 65, 129] {
            x.insert(id);
        }
        for id in [64, 129, 2] {
            y.insert(id);
        }
        x.intersect(&y);
        assert_eq!(x.to_vec(), vec![64, 129]);
        x.reset(130);
        assert_eq!(x.ones(), 0);
        assert_eq!(x.to_vec(), Vec::<TupleId>::new());
        x.insert(5);
        assert_eq!(x.to_vec(), vec![5]);
    }

    #[test]
    fn copy_from_reuses_buffer() {
        let mut src = CandidateBitmap::new(70);
        src.insert(69);
        src.insert(1);
        let mut dst = CandidateBitmap::new(8);
        dst.insert(2);
        dst.copy_from(&src);
        assert_eq!(dst.to_vec(), vec![1, 69]);
        assert_eq!(dst.len(), 70);
    }

    #[test]
    fn union_with_merges_and_clamps() {
        let mut x = CandidateBitmap::new(130);
        x.insert(1);
        x.insert(64);
        let mut y = CandidateBitmap::new(300);
        for id in [1, 2, 129, 250] {
            y.insert(id);
        }
        x.union_with(&y);
        // 250 is beyond x's capacity and must be dropped.
        assert_eq!(x.to_vec(), vec![1, 2, 64, 129]);
        assert_eq!(x.ones(), 4);
        // Union into an empty bitmap after reset.
        x.reset(130);
        x.union_with(&y);
        assert_eq!(x.to_vec(), vec![1, 2, 129]);
    }

    #[test]
    fn intersect_with_smaller_other() {
        let mut x = CandidateBitmap::new(200);
        x.insert(10);
        x.insert(190);
        let mut y = CandidateBitmap::new(64);
        y.insert(10);
        x.intersect(&y);
        assert_eq!(x.to_vec(), vec![10]);
    }
}
