//! Fixed-width token-set Bloom signatures and the lossless popcount
//! overlap bound.
//!
//! Each indexed tuple gets a `words × 64`-bit fingerprint: every distinct
//! token sets one bit (FNV-1a hash mod the width). For a set-similarity
//! predicate `sim(a, b) > t` the prefix-filter math already gives a
//! minimal required token overlap `o = required_overlap(t, |a|, |b|)`; the
//! signature layer answers "can |a ∩ b| reach o?" with one AND + popcount
//! per pair, *before* any posting-list walk or exact similarity score.
//!
//! # Superset proof
//!
//! Naively testing `popcount(sig_a & sig_b) ≥ o` is NOT lossless: two
//! distinct shared tokens may collide onto one bit, so a true match with
//! overlap `o` can intersect in fewer than `o` bits. The sound bound is
//! computed probe-side. Let the probe's tokens hash to bits with
//! multiplicities `m_1 ≥ m_2 ≥ …` (how many probe tokens land on each
//! distinct bit). Any `o` distinct probe tokens cover at least `min_bits[o]`
//! distinct bits, where `min_bits[o]` is the smallest `k` with
//! `m_1 + … + m_k ≥ o` — the adversary packs shared tokens onto the most
//! crowded bits first. If `|a ∩ b| ≥ o` then the shared tokens' bits are
//! set in *both* signatures, hence `popcount(sig_a & sig_b) ≥ min_bits[o]`.
//! Contrapositive: `popcount < min_bits[o]` ⇒ overlap `< o` ⇒ the pair
//! cannot clear the threshold, so pruning it is exact. A requirement
//! `o > |b|` is unsatisfiable outright (overlap is at most `|b|`), so
//! that prune is exact too. False positives pass through to the exact
//! filters — the layer can only ever yield a superset of true candidates.

use falcon_table::TupleId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Sentinel length for tuples with no tokens (mirrors
/// `inverted::NO_TOKENS`): they can never satisfy a positive overlap
/// requirement and are excluded from signature scans.
pub const SIG_NO_TOKENS: u32 = u32::MAX;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a hash of a token — stable across platforms and runs, so
/// signatures (and therefore candidate sets) are deterministic.
fn fnv1a(token: &str) -> u64 {
    let mut h = FNV_OFFSET;
    for byte in token.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Bit position for `token` in a `words`-word signature.
#[inline]
fn token_bit(token: &str, words: usize) -> usize {
    (fnv1a(token) % (words as u64 * 64)) as usize
}

/// Dense column of per-tuple Bloom fingerprints plus token counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SignatureIndex {
    /// Signature width in 64-bit words (≥ 1).
    words: usize,
    /// Row-major fingerprints: tuple `id` owns `bits[id*words .. (id+1)*words]`.
    bits: Vec<u64>,
    /// Distinct-token count per tuple; `SIG_NO_TOKENS` for tokenless rows.
    sizes: Vec<u32>,
    /// Total set bits across all fingerprints (density statistic).
    set_bits: u64,
}

impl SignatureIndex {
    /// Empty index with room for `n` tuples at `words × 64` bits each.
    /// `words` is clamped to ≥ 1 (the verifier rejects 0 statically; the
    /// clamp keeps the data structure total).
    pub fn new(n: usize, words: usize) -> Self {
        let words = words.max(1);
        Self {
            words,
            bits: vec![0; n * words],
            sizes: vec![SIG_NO_TOKENS; n],
            set_bits: 0,
        }
    }

    /// Signature width in 64-bit words.
    pub fn words(&self) -> usize {
        self.words
    }

    /// Number of tuple slots.
    pub fn len(&self) -> usize {
        self.sizes.len()
    }

    /// True iff no tuple slots exist.
    pub fn is_empty(&self) -> bool {
        self.sizes.is_empty()
    }

    /// Record tuple `id`'s token set. Called once per tuple during the
    /// columnar build pass; later calls overwrite.
    pub fn insert(&mut self, id: TupleId, tokens: &BTreeSet<String>) {
        let i = id as usize;
        if i >= self.sizes.len() {
            return;
        }
        let row = &mut self.bits[i * self.words..(i + 1) * self.words];
        let old_bits: u64 = row.iter().map(|w| w.count_ones() as u64).sum();
        self.set_bits -= old_bits;
        for w in row.iter_mut() {
            *w = 0;
        }
        if tokens.is_empty() {
            self.sizes[i] = SIG_NO_TOKENS;
            return;
        }
        for t in tokens {
            let bit = token_bit(t, self.words);
            row[bit / 64] |= 1 << (bit % 64);
        }
        self.set_bits += row.iter().map(|w| w.count_ones() as u64).sum::<u64>();
        self.sizes[i] = tokens.len() as u32;
    }

    /// Distinct-token count of tuple `id` (`SIG_NO_TOKENS` when absent).
    pub fn size(&self, id: TupleId) -> u32 {
        self.sizes
            .get(id as usize)
            .copied()
            .unwrap_or(SIG_NO_TOKENS)
    }

    /// Number of tuples that carry a real (non-sentinel) signature.
    pub fn signed_count(&self) -> usize {
        self.sizes.iter().filter(|s| **s != SIG_NO_TOKENS).count()
    }

    /// Mean fraction of set bits per signed fingerprint, in `[0, 1]`.
    /// Near-saturated signatures (density → 1) prune nothing; the planner
    /// uses this to decide whether the layer pays off.
    pub fn density(&self) -> f64 {
        let signed = self.signed_count();
        if signed == 0 {
            return 0.0;
        }
        self.set_bits as f64 / (signed as f64 * self.words as f64 * 64.0)
    }

    /// Estimated memory footprint in bytes.
    pub fn estimated_bytes(&self) -> usize {
        self.bits.len() * 8 + self.sizes.len() * 4
    }

    /// Lossless pre-filter test: can tuple `id` share at least `need`
    /// distinct tokens with the probe? `true` means "maybe" (the exact
    /// path must still check); `false` is a proof of impossibility.
    #[inline]
    pub fn may_overlap(&self, id: TupleId, probe: &ProbeSig, need: usize) -> bool {
        let i = id as usize;
        debug_assert_eq!(probe.words, self.words);
        let size = match self.sizes.get(i) {
            Some(s) => *s,
            None => return false,
        };
        if need == 0 {
            return true;
        }
        if size == SIG_NO_TOKENS || (size as usize) < need {
            // Overlap is bounded by |a|; fewer tokens than `need` cannot
            // overlap enough. Tokenless tuples never satisfy need ≥ 1.
            return false;
        }
        let Some(&floor) = probe.min_bits.get(need) else {
            // need > |b|: overlap ≤ |b| < need — impossible.
            return false;
        };
        let row = &self.bits[i * self.words..(i + 1) * self.words];
        let mut shared = 0u32;
        for (a, b) in row.iter().zip(&probe.sig) {
            shared += (a & b).count_ones();
        }
        shared >= floor
    }
}

/// Probe-side signature: the B tuple's fingerprint plus the `min_bits`
/// table that makes the popcount test lossless (see module docs).
#[derive(Debug, Clone)]
pub struct ProbeSig {
    words: usize,
    sig: Vec<u64>,
    /// `min_bits[o]` = minimum distinct signature bits any `o` distinct
    /// probe tokens must cover; length `|tokens| + 1`.
    min_bits: Vec<u32>,
    token_count: usize,
}

impl ProbeSig {
    /// Build the probe fingerprint and its `min_bits` table from the B
    /// value's token set.
    pub fn build(tokens: &BTreeSet<String>, words: usize) -> Self {
        let words = words.max(1);
        let mut sig = vec![0u64; words];
        // Multiplicity per distinct bit: how many probe tokens hash there.
        let mut mult: Vec<u32> = Vec::with_capacity(tokens.len());
        let mut bits: Vec<usize> = tokens.iter().map(|t| token_bit(t, words)).collect();
        bits.sort_unstable();
        for bit in &bits {
            sig[bit / 64] |= 1 << (bit % 64);
        }
        let mut i = 0;
        while i < bits.len() {
            let mut j = i + 1;
            while j < bits.len() && bits[j] == bits[i] {
                j += 1;
            }
            mult.push((j - i) as u32);
            i = j;
        }
        // Adversary packs shared tokens onto the most crowded bits first:
        // with the k most crowded bits one can cover m_1 + … + m_k tokens.
        mult.sort_unstable_by(|a, b| b.cmp(a));
        let mut min_bits = Vec::with_capacity(tokens.len() + 1);
        min_bits.push(0); // o = 0 needs no bits
        let mut covered = 0u64;
        let mut k = 0u32;
        for o in 1..=tokens.len() as u64 {
            while covered < o {
                covered += u64::from(mult[k as usize]);
                k += 1;
            }
            min_bits.push(k);
        }
        Self {
            words,
            sig,
            min_bits,
            token_count: tokens.len(),
        }
    }

    /// Number of distinct probe tokens.
    pub fn token_count(&self) -> usize {
        self.token_count
    }
}

/// Per-conjunct probe counters, accumulated locally per chunk and flushed
/// into atomic totals (deterministic because the dataflow layer executes
/// each map body exactly once per task, even under injected faults).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProbeStats {
    /// Pairs considered by this conjunct's index probes.
    pub pairs_examined: u64,
    /// Pairs eliminated by the signature popcount test alone.
    pub pruned_by_signature: u64,
    /// Pairs eliminated by the exact filters (length/position/prefix,
    /// range, equality) after surviving (or bypassing) the signature.
    pub pruned_by_exact: u64,
    /// Pairs emitted as candidates.
    pub survived: u64,
}

impl ProbeStats {
    /// Accumulate another counter set into this one.
    pub fn merge(&mut self, other: &ProbeStats) {
        self.pairs_examined += other.pairs_examined;
        self.pruned_by_signature += other.pruned_by_signature;
        self.pruned_by_exact += other.pruned_by_exact;
        self.survived += other.survived;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(v: &[&str]) -> BTreeSet<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn identical_sets_always_may_overlap() {
        let t = toks(&["ab", "bc", "cd", "de"]);
        for words in [1usize, 2, 4] {
            let mut idx = SignatureIndex::new(1, words);
            idx.insert(0, &t);
            let probe = ProbeSig::build(&t, words);
            for need in 0..=t.len() {
                assert!(
                    idx.may_overlap(0, &probe, need),
                    "words={words} need={need}"
                );
            }
            // need beyond |probe| is impossible.
            assert!(!idx.may_overlap(0, &probe, t.len() + 1));
        }
    }

    #[test]
    fn disjoint_sets_pruned_when_bits_disjoint() {
        // With a wide signature, disjoint small sets almost surely map to
        // disjoint bits; when they do, overlap ≥ 1 must be refuted.
        let a = toks(&["alpha", "beta"]);
        let b = toks(&["gamma", "delta"]);
        let words = 4;
        let mut idx = SignatureIndex::new(1, words);
        idx.insert(0, &a);
        let probe = ProbeSig::build(&b, words);
        let bits_a: BTreeSet<usize> = a.iter().map(|t| token_bit(t, words)).collect();
        let bits_b: BTreeSet<usize> = b.iter().map(|t| token_bit(t, words)).collect();
        if bits_a.is_disjoint(&bits_b) {
            assert!(!idx.may_overlap(0, &probe, 1));
        }
        // Either way, need=0 always passes.
        assert!(idx.may_overlap(0, &probe, 0));
    }

    #[test]
    fn min_bits_accounts_for_collisions() {
        // Force every token onto one bit with a 1-word signature on a big
        // token set: min_bits[o] must be 1 for all o ≤ |tokens| whenever
        // all tokens collide, so a single shared bit cannot prune.
        let t: BTreeSet<String> = (0..200).map(|i| format!("tok{i}")).collect();
        let probe = ProbeSig::build(&t, 1);
        let mut idx = SignatureIndex::new(1, 1);
        idx.insert(0, &t);
        // Identity pair with full overlap: must never be pruned.
        for need in 0..=t.len() {
            assert!(idx.may_overlap(0, &probe, need), "need={need}");
        }
    }

    #[test]
    fn tokenless_and_missing_ids() {
        let mut idx = SignatureIndex::new(2, 1);
        idx.insert(0, &BTreeSet::new());
        idx.insert(1, &toks(&["x"]));
        let probe = ProbeSig::build(&toks(&["x"]), 1);
        assert!(!idx.may_overlap(0, &probe, 1), "tokenless can't overlap");
        assert!(idx.may_overlap(0, &probe, 0), "need=0 passes everything");
        assert!(idx.may_overlap(1, &probe, 1));
        assert!(!idx.may_overlap(99, &probe, 1), "out of range");
        assert_eq!(idx.size(0), SIG_NO_TOKENS);
        assert_eq!(idx.size(1), 1);
        assert_eq!(idx.signed_count(), 1);
    }

    #[test]
    fn density_and_bytes() {
        let mut idx = SignatureIndex::new(4, 2);
        idx.insert(0, &toks(&["a", "b", "c"]));
        idx.insert(1, &toks(&["d"]));
        let d = idx.density();
        assert!(d > 0.0 && d < 1.0, "density {d}");
        assert!(idx.estimated_bytes() > 0);
        assert_eq!(idx.words(), 2);
        assert_eq!(idx.len(), 4);
    }

    #[test]
    fn probe_stats_merge() {
        let mut a = ProbeStats {
            pairs_examined: 5,
            pruned_by_signature: 2,
            pruned_by_exact: 1,
            survived: 2,
        };
        let b = ProbeStats {
            pairs_examined: 3,
            pruned_by_signature: 0,
            pruned_by_exact: 1,
            survived: 2,
        };
        a.merge(&b);
        assert_eq!(a.pairs_examined, 8);
        assert_eq!(a.survived, 4);
    }

    #[test]
    fn hash_is_deterministic() {
        assert_eq!(fnv1a("falcon"), fnv1a("falcon"));
        assert_ne!(fnv1a("falcon"), fnv1a("falcom"));
    }
}
