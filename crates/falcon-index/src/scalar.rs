//! Hash, range and length indexes (equivalence, range and length filters).

use falcon_table::TupleId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Hash index over rendered attribute values: the equivalence filter for
/// `exact_match` predicates.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HashIndex {
    map: HashMap<String, Vec<TupleId>>,
    entries: usize,
}

impl HashIndex {
    /// Build from `(id, value)` pairs; null/empty values are skipped (a
    /// null never exact-matches anything under our missing-value
    /// semantics).
    pub fn build<'a>(values: impl Iterator<Item = (TupleId, &'a str)>) -> Self {
        let mut idx = Self::default();
        for (id, v) in values {
            idx.insert(id, v);
        }
        idx
    }

    /// Insert one `(id, value)` entry. Empty values are skipped (a null
    /// never exact-matches anything). This is the incremental form used by
    /// the columnar one-pass index builds.
    pub fn insert(&mut self, id: TupleId, v: &str) {
        if v.is_empty() {
            return;
        }
        self.map.entry(v.to_string()).or_default().push(id);
        self.entries += 1;
    }

    /// Ids whose value equals the probe exactly.
    pub fn probe(&self, value: &str) -> &[TupleId] {
        self.map.get(value).map_or(&[], Vec::as_slice)
    }

    /// Estimated memory footprint in bytes.
    pub fn estimated_bytes(&self) -> usize {
        let key_bytes: usize = self.map.keys().map(|k| k.len() + 48).sum();
        key_bytes + self.entries * std::mem::size_of::<TupleId>()
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True iff nothing was indexed.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }
}

/// Sorted numeric index: the range filter for `abs_diff` / `rel_diff`
/// predicates (the paper's "B-tree index"; a sorted array with binary
/// search has the same probe complexity and a smaller footprint).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RangeIndex {
    // Sorted by value.
    entries: Vec<(f64, TupleId)>,
}

impl RangeIndex {
    /// Build from `(id, numeric value)` pairs.
    pub fn build(values: impl Iterator<Item = (TupleId, f64)>) -> Self {
        let mut entries: Vec<(f64, TupleId)> = values
            .filter(|(_, v)| v.is_finite())
            .map(|(id, v)| (v, id))
            .collect();
        entries.sort_by(|a, b| a.0.total_cmp(&b.0));
        Self { entries }
    }

    /// Ids whose value lies in `[lo, hi]` (inclusive). Both endpoints are
    /// located by binary search, so the probe costs O(log n + k) rather
    /// than a linear scan with a per-entry bound check.
    pub fn probe(&self, lo: f64, hi: f64, out: &mut Vec<TupleId>) {
        if lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Less)
            && lo.partial_cmp(&hi) != Some(std::cmp::Ordering::Equal)
        {
            // Empty or NaN-bounded range: nothing can satisfy it.
            return;
        }
        let start = self.entries.partition_point(|(v, _)| *v < lo);
        let end = self.entries.partition_point(|(v, _)| *v <= hi);
        out.extend(self.entries[start..end].iter().map(|(_, id)| *id));
    }

    /// Estimated memory footprint in bytes.
    pub fn estimated_bytes(&self) -> usize {
        self.entries.len() * std::mem::size_of::<(f64, TupleId)>()
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff nothing was indexed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Length index: ids bucketed by token-set (or character) length, probed
/// with an inclusive length range — the length filter of Example 6.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LengthIndex {
    // by_len[l] = ids with length l; lengths are small so a dense Vec is
    // compact and cache friendly.
    by_len: Vec<Vec<TupleId>>,
    entries: usize,
}

impl LengthIndex {
    /// Build from `(id, length)` pairs.
    pub fn build(values: impl Iterator<Item = (TupleId, usize)>) -> Self {
        let mut by_len: Vec<Vec<TupleId>> = Vec::new();
        let mut entries = 0;
        for (id, len) in values {
            if by_len.len() <= len {
                by_len.resize_with(len + 1, Vec::new);
            }
            by_len[len].push(id);
            entries += 1;
        }
        Self { by_len, entries }
    }

    /// Length of a specific tuple's value, if indexed. O(#lengths) — used
    /// only in tests; filters store lengths separately.
    pub fn ids_with_len(&self, len: usize) -> &[TupleId] {
        self.by_len.get(len).map_or(&[], Vec::as_slice)
    }

    /// Append all ids whose length lies in `[lo, hi]` (inclusive). The
    /// bucket range is clamped up front so empty/degenerate ranges cost
    /// nothing instead of walking the whole bucket table.
    pub fn probe(&self, lo: usize, hi: usize, out: &mut Vec<TupleId>) {
        if self.by_len.is_empty() || lo > hi || lo >= self.by_len.len() {
            return;
        }
        let hi = hi.min(self.by_len.len() - 1);
        for bucket in &self.by_len[lo..=hi] {
            out.extend_from_slice(bucket);
        }
    }

    /// Estimated memory footprint in bytes.
    pub fn estimated_bytes(&self) -> usize {
        self.entries * std::mem::size_of::<TupleId>() + self.by_len.len() * 24
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// True iff nothing was indexed.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_index_probe() {
        let idx = HashIndex::build([(0, "x"), (1, "y"), (2, "x"), (3, "")].into_iter());
        assert_eq!(idx.probe("x"), &[0, 2]);
        assert_eq!(idx.probe("y"), &[1]);
        assert_eq!(idx.probe("z"), &[] as &[TupleId]);
        assert_eq!(idx.probe(""), &[] as &[TupleId]);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn range_index_probe() {
        let idx = RangeIndex::build([(0, 5.0), (1, 10.0), (2, 7.5), (3, f64::NAN)].into_iter());
        assert_eq!(idx.len(), 3);
        let mut out = Vec::new();
        idx.probe(6.0, 10.0, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![1, 2]);
        out.clear();
        idx.probe(-1.0, 100.0, &mut out);
        assert_eq!(out.len(), 3);
        out.clear();
        idx.probe(11.0, 12.0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn range_probe_inclusive() {
        let idx = RangeIndex::build([(0, 5.0), (1, 10.0)].into_iter());
        let mut out = Vec::new();
        idx.probe(5.0, 10.0, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn length_index_probe() {
        let idx = LengthIndex::build([(0, 2), (1, 5), (2, 2), (3, 9)].into_iter());
        let mut out = Vec::new();
        idx.probe(2, 5, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1, 2]);
        out.clear();
        idx.probe(6, 100, &mut out);
        assert_eq!(out, vec![3]);
        out.clear();
        idx.probe(10, 20, &mut out);
        assert!(out.is_empty());
        assert_eq!(idx.ids_with_len(2), &[0, 2]);
    }

    #[test]
    fn range_probe_degenerate_ranges() {
        let idx = RangeIndex::build([(0, 1.0), (1, 2.0), (2, 3.0)].into_iter());
        let mut out = Vec::new();
        // Inverted range: empty.
        idx.probe(3.0, 1.0, &mut out);
        assert!(out.is_empty());
        // NaN bounds: empty, no panic.
        idx.probe(f64::NAN, 5.0, &mut out);
        idx.probe(0.0, f64::NAN, &mut out);
        assert!(out.is_empty());
        // Point range on a present value.
        idx.probe(2.0, 2.0, &mut out);
        assert_eq!(out, vec![1]);
        out.clear();
        // Point range between values: empty.
        idx.probe(2.5, 2.5, &mut out);
        assert!(out.is_empty());
        // Empty index.
        let empty = RangeIndex::default();
        empty.probe(0.0, 10.0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn range_probe_duplicate_values_at_bounds() {
        let idx = RangeIndex::build([(0, 5.0), (1, 5.0), (2, 5.0), (3, 7.0), (4, 7.0)].into_iter());
        let mut out = Vec::new();
        idx.probe(5.0, 7.0, &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        out.clear();
        idx.probe(5.0, 5.0, &mut out);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn length_probe_degenerate_ranges() {
        let idx = LengthIndex::build([(0, 2), (1, 5)].into_iter());
        let mut out = Vec::new();
        // Inverted range.
        idx.probe(5, 2, &mut out);
        assert!(out.is_empty());
        // lo past the largest bucket.
        idx.probe(6, 100, &mut out);
        assert!(out.is_empty());
        // Empty index.
        let empty = LengthIndex::default();
        empty.probe(0, 100, &mut out);
        assert!(out.is_empty());
        // Point range.
        idx.probe(5, 5, &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn estimated_bytes_positive() {
        let h = HashIndex::build([(0, "abc")].into_iter());
        assert!(h.estimated_bytes() > 0);
        let r = RangeIndex::build([(0, 1.0)].into_iter());
        assert!(r.estimated_bytes() > 0);
        let l = LengthIndex::build([(0, 3)].into_iter());
        assert!(l.estimated_bytes() > 0);
    }
}
