//! Per-predicate filter specification, index bundle, and the probe routine
//! (`FindProbableCandidates` of Algorithm 1).
//!
//! ## Missing-value semantics
//!
//! Blocking must be recall-safe on dirty data: a pair may never be
//! dropped because a value is *missing*. Falcon's rule layer therefore
//! treats a missing feature value as "maximally similar", which means
//! every filterable positive-rule predicate (`sim > t`, `dist <= v`) is
//! **satisfied** when either side's value is missing. Consequences for
//! every filter kind:
//!
//! * `A` tuples whose indexed value is missing are *permanent candidates*
//!   (kept in a `missing` side list returned by every probe), and
//! * a probe with a missing `B` value matches **all** of `A`
//!   ([`Candidates::All`]).
//!
//! Similarity-below-threshold and distance-above-threshold predicates
//! match (almost) all dissimilar pairs and admit no index:
//! [`FilterSpec`] construction reports them as unfilterable.

use crate::bitmap::CandidateBitmap;
use crate::inverted::{PrefixIndex, TokenOrder};
use crate::scalar::{HashIndex, LengthIndex, RangeIndex};
use crate::signature::{ProbeSig, ProbeStats, SignatureIndex, SIG_NO_TOKENS};
use falcon_table::{Table, TupleId, Value, ValueRef};
use falcon_textsim::{prefix, SimFunction, Tokenizer};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Widest allowed signature (64 words = 4096 bits): wider adds memory
/// without measurable extra pruning, and the cap keeps `words × 64`
/// arithmetic comfortably inside `u64`.
pub const MAX_SIGNATURE_WORDS: usize = 64;

/// What kind of index-based filtering a positive-rule predicate admits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FilterSpec {
    /// `exact_match(a.x, b.y) = 1` → equivalence filter (hash index).
    Equals {
        /// Indexed A-side attribute.
        a_attr: String,
    },
    /// `abs_diff/rel_diff(a.x, b.y) <= v` → range filter (sorted index).
    Range {
        /// Indexed A-side attribute.
        a_attr: String,
        /// Distance threshold `v`.
        width: f64,
        /// True for `rel_diff` (relative width).
        relative: bool,
    },
    /// `sim(a.x, b.y) > t` for a set measure → prefix + position + length
    /// filters.
    SetSim {
        /// Indexed A-side attribute.
        a_attr: String,
        /// The set similarity measure (carries its tokenizer).
        sim: SimFunction,
        /// Similarity threshold `t`.
        threshold: f64,
    },
    /// `levenshtein(a.x, b.y) > t` → character-length filter plus a
    /// share-a-qgram filter where provably sound.
    EditSim {
        /// Indexed A-side attribute.
        a_attr: String,
        /// Similarity threshold `t`.
        threshold: f64,
    },
    /// Signature pre-filter wrapped around a set-similarity filter: the
    /// inner filters still run, but each pair is first tested with a
    /// `words × 64`-bit Bloom fingerprint popcount bound (see
    /// [`crate::signature`]). Only provably a candidate-superset over
    /// [`FilterSpec::SetSim`] inners — the static verifier rejects
    /// anything else.
    Signature {
        /// The exact filter the signature gates (must be `SetSim`).
        inner: Box<FilterSpec>,
        /// Signature width in 64-bit words (1..=64).
        words: usize,
    },
}

impl FilterSpec {
    /// Classify a positive-rule predicate `sim(a.x, b.y) op v` into a
    /// filter spec. `gt` is true for `> v` predicates (from complementing
    /// `<=` splits), false for `<= v`. Returns `None` when the predicate is
    /// unfilterable (dissimilarity predicates, exotic measures).
    pub fn from_predicate(sim: SimFunction, a_attr: &str, gt: bool, v: f64) -> Option<FilterSpec> {
        match (sim, gt) {
            // Similarity must EXCEED a threshold -> prunable.
            (SimFunction::ExactMatch, true) if (0.0..1.0).contains(&v) => {
                Some(FilterSpec::Equals {
                    a_attr: a_attr.to_string(),
                })
            }
            (s, true) if s.is_set_based() && v > 0.0 => Some(FilterSpec::SetSim {
                a_attr: a_attr.to_string(),
                sim: s,
                threshold: v,
            }),
            (SimFunction::Levenshtein, true) if v > 0.0 => Some(FilterSpec::EditSim {
                a_attr: a_attr.to_string(),
                threshold: v,
            }),
            // Distance must stay BELOW a threshold -> prunable.
            (SimFunction::AbsDiff, false) => Some(FilterSpec::Range {
                a_attr: a_attr.to_string(),
                width: v,
                relative: false,
            }),
            (SimFunction::RelDiff, false) if v < 1.0 => Some(FilterSpec::Range {
                a_attr: a_attr.to_string(),
                width: v,
                relative: true,
            }),
            _ => None,
        }
    }

    /// The A-side attribute the filter indexes.
    pub fn a_attr(&self) -> &str {
        match self {
            FilterSpec::Equals { a_attr }
            | FilterSpec::Range { a_attr, .. }
            | FilterSpec::SetSim { a_attr, .. }
            | FilterSpec::EditSim { a_attr, .. } => a_attr,
            FilterSpec::Signature { inner, .. } => inner.a_attr(),
        }
    }

    /// Wrap this spec with a `words`-word signature pre-filter when the
    /// signature layer is provably lossless for it (set-similarity
    /// filters only); other specs are returned unchanged. This is the
    /// only constructor planner code should use — it can never produce a
    /// spec that `verify()` rejects for a valid `words`.
    pub fn with_signature(self, words: usize) -> FilterSpec {
        match self {
            spec @ FilterSpec::SetSim { .. } => FilterSpec::Signature {
                inner: Box::new(spec),
                words,
            },
            spec => spec,
        }
    }

    /// Strip any signature wrapper, yielding the exact filter spec.
    pub fn without_signature(&self) -> &FilterSpec {
        match self {
            FilterSpec::Signature { inner, .. } => inner.without_signature(),
            spec => spec,
        }
    }

    /// The recall-safety proof obligations this spec must discharge, each
    /// paired with whether it holds. The obligations are exactly the
    /// monotonicity conditions `falcon-index/tests/lossless.rs` exercises
    /// dynamically: a spec that discharges all of them prunes only pairs
    /// that provably fail its predicate, so blocking stays lossless.
    pub fn obligations(&self) -> Vec<(Obligation, bool)> {
        match self {
            // Hash-equality pruning never drops a satisfying pair:
            // `exact_match = 1` implies identical rendered values.
            FilterSpec::Equals { .. } => Vec::new(),
            FilterSpec::Range {
                width, relative, ..
            } => {
                let mut obs = vec![
                    (Obligation::WidthFinite, width.is_finite()),
                    (Obligation::WidthNonNegative, *width >= 0.0),
                ];
                if *relative {
                    // rel_diff ranges over [0, 2]; the sorted-index window
                    // `|a-b| <= w·max(|a|,|b|)` is only invertible to a
                    // probe range when w < 1.
                    obs.push((Obligation::RelativeWidthBelowOne, *width < 1.0));
                }
                obs
            }
            FilterSpec::SetSim { sim, threshold, .. } => vec![
                // Prefix/position/length filtering is derived from token
                // *set* overlap bounds; a non-set measure (even one that
                // happens to carry a tokenizer, like MongeElkan) admits no
                // such bound.
                (Obligation::SetBasedSim, sim.is_set_based()),
                (Obligation::ThresholdFinite, threshold.is_finite()),
                // t <= 0 would make the prefix filter prune zero-overlap
                // pairs that still satisfy `sim > t` — false negatives.
                (Obligation::ThresholdPositive, *threshold > 0.0),
            ],
            FilterSpec::EditSim { threshold, .. } => vec![
                (Obligation::ThresholdFinite, threshold.is_finite()),
                (Obligation::ThresholdPositive, *threshold > 0.0),
            ],
            FilterSpec::Signature { inner, words } => {
                // The inner filter's obligations still apply verbatim (the
                // exact path runs behind the gate), plus two signature
                // obligations: a usable width, and the superset proof —
                // the popcount bound is derived from the set-overlap
                // requirement `required_overlap`, which exists only for
                // set-similarity filters. Wrapping anything else (ranges,
                // equality, edit distance, another signature) has no such
                // bound and could prune satisfying pairs.
                let mut obs = inner.obligations();
                obs.push((
                    Obligation::SignatureWidthValid,
                    (1..=MAX_SIGNATURE_WORDS).contains(words),
                ));
                obs.push((
                    Obligation::SignatureSuperset,
                    matches!(**inner, FilterSpec::SetSim { .. }),
                ));
                obs
            }
        }
    }

    /// Check every obligation, returning the first that fails.
    pub fn verify(&self) -> Result<(), Obligation> {
        match self.obligations().into_iter().find(|(_, holds)| !holds) {
            None => Ok(()),
            Some((ob, _)) => Err(ob),
        }
    }
}

/// One recall-safety proof obligation on a [`FilterSpec`]: a condition
/// under which the index's pruning is provably lossless (prunes only
/// pairs that fail the predicate). See [`FilterSpec::obligations`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Obligation {
    /// A similarity threshold must be finite (NaN/∞ break the prefix and
    /// length bound arithmetic).
    ThresholdFinite,
    /// A similarity threshold must be strictly positive: at `t <= 0` even
    /// zero-overlap pairs satisfy `sim > t`, but the prefix filter would
    /// prune them.
    ThresholdPositive,
    /// A set-similarity spec's measure must actually be set-based
    /// (prefix/position/length bounds exist only for set-overlap
    /// measures).
    SetBasedSim,
    /// A range width must be finite.
    WidthFinite,
    /// A range width must be non-negative (a negative width matches
    /// nothing numerically, yet missing-value pairs still satisfy the
    /// predicate).
    WidthNonNegative,
    /// A relative range width must be below one for the probe window to
    /// be invertible (`rel_diff` ranges over [0, 2]).
    RelativeWidthBelowOne,
    /// A signature width must lie in `1..=MAX_SIGNATURE_WORDS` 64-bit
    /// words (zero-width signatures have no bits to compare; absurd
    /// widths waste memory for no pruning).
    SignatureWidthValid,
    /// A signature pre-filter must be provably a candidate-superset: the
    /// popcount bound exists only for set-similarity filters, so only a
    /// `SetSim` inner can be wrapped.
    SignatureSuperset,
}

impl Obligation {
    /// Human-readable statement of the condition.
    pub fn describe(self) -> &'static str {
        match self {
            Obligation::ThresholdFinite => "similarity threshold is finite",
            Obligation::ThresholdPositive => "similarity threshold is strictly positive",
            Obligation::SetBasedSim => "similarity function is set-based",
            Obligation::WidthFinite => "range width is finite",
            Obligation::WidthNonNegative => "range width is non-negative",
            Obligation::RelativeWidthBelowOne => "relative range width is below one",
            Obligation::SignatureWidthValid => "signature width is between 1 and 64 words",
            Obligation::SignatureSuperset => {
                "signature pre-filter provably passes a candidate superset \
                 (requires a set-similarity inner filter)"
            }
        }
    }
}

impl std::fmt::Display for Obligation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.describe())
    }
}

/// Candidate set returned by a probe.
#[derive(Debug, Clone, PartialEq)]
pub enum Candidates {
    /// Every `A` tuple is a candidate (no pruning possible for this probe).
    All,
    /// These ids (possibly with duplicates) are the only candidates.
    Some(Vec<TupleId>),
    /// Dense candidate bitmap (already deduplicated, iterates sorted).
    /// Produced by signature-only (`Dense`) probes.
    Bitmap(CandidateBitmap),
}

impl ProbeMode {
    /// Short display name ("off" / "gate" / "dense").
    pub fn name(self) -> &'static str {
        match self {
            ProbeMode::Off => "off",
            ProbeMode::Gate => "gate",
            ProbeMode::Dense => "dense",
        }
    }
}

impl Candidates {
    /// Visit every candidate id; `Some` may repeat ids, `Bitmap` never
    /// does. Returns `false` when the set is `All` (unrestricted) without
    /// calling `f`.
    pub fn for_each_id(&self, mut f: impl FnMut(TupleId)) -> bool {
        match self {
            Candidates::All => false,
            Candidates::Some(ids) => {
                for id in ids {
                    f(*id);
                }
                true
            }
            Candidates::Bitmap(bm) => {
                bm.for_each(&mut f);
                true
            }
        }
    }
}

/// How a signature-wrapped predicate index answers a probe. Chosen per
/// conjunct by the planner from signature density and postings stats
/// ([`PredicateIndex::plan_probe_mode`]); every mode yields a lossless
/// candidate set, they differ only in cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeMode {
    /// Exact filters only (signatures too dense to prune anything).
    Off,
    /// Walk the inverted index, gating each posting with the signature
    /// popcount bound before exact length/position filtering.
    Gate,
    /// Skip the inverted index: scan the dense signature column and keep
    /// every id the popcount + length bounds cannot refute. Returns a
    /// superset of the exact probe's output — downstream exact rule
    /// evaluation makes the final candidate pairs identical.
    Dense,
}

/// Built index bundle for one filterable predicate.
///
/// ```
/// use falcon_index::{FilterSpec, PredicateIndex};
/// use falcon_index::spec::Candidates;
/// use falcon_table::{AttrType, Schema, Table, Value};
/// use falcon_textsim::{SimFunction, Tokenizer};
///
/// let schema = Schema::new([("title", AttrType::Str)]);
/// let a = Table::new("A", schema, vec![
///     vec![Value::str("digital camera")],
///     vec![Value::str("gaming mouse")],
/// ]);
/// let spec = FilterSpec::SetSim {
///     a_attr: "title".into(),
///     sim: SimFunction::Jaccard(Tokenizer::Word),
///     threshold: 0.5,
/// };
/// let index = PredicateIndex::build(&a, &spec, None);
/// match index.probe(&Value::str("compact digital camera")) {
///     Candidates::Some(ids) => assert!(ids.contains(&0) && !ids.contains(&1)),
///     _ => unreachable!(),
/// }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum PredicateIndex {
    /// Equivalence filter; `missing` lists A-ids with absent values
    /// (always candidates under missing-is-similar semantics).
    Equals {
        /// Hash index over present values.
        index: HashIndex,
        /// Ids with missing values.
        missing: Vec<TupleId>,
    },
    /// Range filter over numeric values; `missing` lists A-ids whose value
    /// is absent (they satisfy `dist <= v` vacuously under Le/NaN
    /// semantics).
    Range {
        /// Sorted numeric index.
        index: RangeIndex,
        /// Ids with missing values (always candidates).
        missing: Vec<TupleId>,
        /// Distance threshold.
        width: f64,
        /// True for `rel_diff`.
        relative: bool,
    },
    /// Prefix/position/length filters for one set-similarity predicate.
    SetSim {
        /// Prefix inverted index (carries per-id set sizes).
        index: PrefixIndex,
        /// Global token order shared between index and probes.
        order: TokenOrder,
        /// The measure.
        sim: SimFunction,
        /// Threshold.
        threshold: f64,
        /// Ids with missing values (always candidates).
        missing: Vec<TupleId>,
    },
    /// Signature pre-filter over an exact set-similarity bundle: a dense
    /// Bloom fingerprint column consulted before (or instead of) the
    /// inner inverted-index probe.
    Signature {
        /// Per-tuple fingerprints plus token counts.
        sigs: SignatureIndex,
        /// The exact filter bundle behind the gate (always `SetSim`).
        exact: Box<PredicateIndex>,
    },
    /// Character-length + shared-qgram filters for Levenshtein predicates.
    Edit {
        /// Length index over character counts.
        lengths: LengthIndex,
        /// qgram -> ids, for ids where the shared-qgram condition is sound.
        qgrams: HashMap<String, Vec<TupleId>>,
        /// Ids where qgram pruning is not sound (always candidates after
        /// the length filter).
        unprunable: Vec<TupleId>,
        /// Per-id character length (usize::MAX = missing).
        char_lens: Vec<usize>,
        /// Threshold.
        threshold: f64,
        /// Ids with missing values (always candidates).
        missing: Vec<TupleId>,
    },
}

const QGRAM: usize = 3;

/// A structural problem with a [`FilterSpec`] discovered while building
/// its index: the spec references something the table or similarity
/// function does not provide.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexError {
    /// The spec names an attribute that the `A` table's schema lacks.
    MissingAttribute {
        /// The missing attribute name.
        attr: String,
    },
    /// A set-similarity spec carries a similarity function with no
    /// tokenizer (i.e. not actually set-based).
    NotSetBased {
        /// Debug rendering of the offending similarity function.
        sim: String,
    },
    /// The spec fails one of its recall-safety proof obligations
    /// ([`FilterSpec::obligations`]): building this index could prune
    /// pairs that satisfy the predicate, i.e. introduce false negatives.
    RecallUnsafe {
        /// The obligation that does not hold.
        obligation: Obligation,
        /// Debug rendering of the offending spec.
        spec: String,
    },
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingAttribute { attr } => {
                write!(f, "attribute {attr:?} missing from table A")
            }
            Self::NotSetBased { sim } => {
                write!(f, "similarity function {sim} is not set-based")
            }
            Self::RecallUnsafe { obligation, spec } => {
                write!(
                    f,
                    "recall-unsafe filter {spec}: obligation not met: {obligation}"
                )
            }
        }
    }
}

impl std::error::Error for IndexError {}

impl PredicateIndex {
    /// Build the index bundle for `spec` over table `a`, panicking when the
    /// spec is structurally invalid. Kept for tests and benches; library
    /// code goes through [`PredicateIndex::try_build`].
    #[allow(clippy::unwrap_used, clippy::expect_used)]
    pub fn build(a: &Table, spec: &FilterSpec, order: Option<TokenOrder>) -> PredicateIndex {
        // falcon-lint: allow(no-panic) — convenience wrapper for tests.
        Self::try_build(a, spec, order).unwrap_or_else(|e| panic!("PredicateIndex::build: {e}"))
    }

    /// Build the index bundle for `spec` over table `a`. For set-similarity
    /// specs a prebuilt [`TokenOrder`] may be supplied (the output of the
    /// token-frequency MR jobs); otherwise one is computed here.
    pub fn try_build(
        a: &Table,
        spec: &FilterSpec,
        order: Option<TokenOrder>,
    ) -> Result<PredicateIndex, IndexError> {
        spec.verify()
            .map_err(|obligation| IndexError::RecallUnsafe {
                obligation,
                spec: format!("{spec:?}"),
            })?;
        let attr_idx =
            a.schema()
                .index_of(spec.a_attr())
                .ok_or_else(|| IndexError::MissingAttribute {
                    attr: spec.a_attr().to_string(),
                })?;
        Ok(match spec {
            FilterSpec::Equals { .. } => {
                // One streaming pass over the column: no per-row Value
                // materialization, no intermediate rendered vector.
                let mut index = HashIndex::default();
                let mut missing = Vec::new();
                a.for_each_rendered(attr_idx, |id, s| {
                    if s.is_empty() {
                        missing.push(id);
                    } else {
                        index.insert(id, s);
                    }
                });
                PredicateIndex::Equals { index, missing }
            }
            FilterSpec::Range {
                width, relative, ..
            } => {
                let mut missing = Vec::new();
                let mut present = Vec::new();
                a.for_each_value(attr_idx, |id, v| match v.as_num() {
                    Some(x) => present.push((id, x)),
                    None => missing.push(id),
                });
                PredicateIndex::Range {
                    index: RangeIndex::build(present.into_iter()),
                    missing,
                    width: *width,
                    relative: *relative,
                }
            }
            FilterSpec::SetSim { sim, threshold, .. } => {
                build_setsim(a, attr_idx, *sim, *threshold, order, None)?
            }
            FilterSpec::Signature { inner, words } => {
                // `verify()` above proved the inner is SetSim; the fallback
                // arm keeps the function total if that invariant ever
                // weakens (an unwrapped build is recall-safe regardless).
                match &**inner {
                    FilterSpec::SetSim { sim, threshold, .. } => {
                        build_setsim(a, attr_idx, *sim, *threshold, order, Some(*words))?
                    }
                    other => Self::try_build(a, other, order)?,
                }
            }
            FilterSpec::EditSim { threshold, .. } => {
                let t = *threshold;
                let mut lengths = Vec::new();
                let mut qgrams: HashMap<String, Vec<TupleId>> = HashMap::new();
                let mut unprunable = Vec::new();
                let mut missing = Vec::new();
                let mut char_lens = vec![usize::MAX; a.len()];
                a.for_each_rendered(attr_idx, |id, s| {
                    if s.is_empty() {
                        missing.push(id); // missing is always a candidate
                        return;
                    }
                    let n = s.chars().count();
                    char_lens[id as usize] = n;
                    lengths.push((id, n));
                    // Shared-qgram condition: any y with lev_sim >= t has
                    // ED <= (1-t)·max(|x|,|y|) <= (1-t)/t·|x| =: d. x and y
                    // then share >= (|x| - q + 1) - d·q qgrams. Pruning by
                    // "shares >= 1 qgram" is sound iff that bound >= 1.
                    let d = ((1.0 - t) / t * n as f64).floor();
                    let min_shared = (n as f64 - QGRAM as f64 + 1.0) - d * QGRAM as f64;
                    if min_shared >= 1.0 {
                        for g in falcon_textsim::tokenize::qgrams(s, QGRAM) {
                            let list = qgrams.entry(g).or_default();
                            if list.last() != Some(&id) {
                                list.push(id);
                            }
                        }
                    } else {
                        unprunable.push(id);
                    }
                });
                PredicateIndex::Edit {
                    lengths: LengthIndex::build(lengths.into_iter()),
                    qgrams,
                    unprunable,
                    char_lens,
                    threshold: t,
                    missing,
                }
            }
        })
    }

    /// Probe with the `B`-side value of the predicate. Returns candidate
    /// `A` ids passing every filter of this predicate.
    pub fn probe(&self, b_value: &Value) -> Candidates {
        self.probe_ref(b_value.as_value_ref())
    }

    /// Borrowed-value form of [`PredicateIndex::probe`]: probe with a
    /// [`ValueRef`] pulled straight from a columnar table, rendering a key
    /// only for numeric probes (string probes borrow the arena slice).
    /// Signature-wrapped indexes probe in their self-planned mode.
    pub fn probe_ref(&self, b_value: ValueRef<'_>) -> Candidates {
        let mut stats = ProbeStats::default();
        self.probe_ref_stats(b_value, self.plan_probe_mode(), &mut stats)
    }

    /// Pick the cheapest lossless probe mode for this index. Non-signature
    /// indexes always run exact ([`ProbeMode::Off`]); for signature
    /// bundles the decision weighs signature density (dense fingerprints
    /// cannot prune) against expected inverted-index work per probe (when
    /// a probe is expected to touch more postings than there are signed
    /// tuples, a flat signature scan is cheaper than walking postings).
    pub fn plan_probe_mode(&self) -> ProbeMode {
        let PredicateIndex::Signature { sigs, exact } = self else {
            return ProbeMode::Off;
        };
        // A near-saturated fingerprint column refutes almost nothing:
        // popcounts become pure overhead, so run the exact path alone.
        if sigs.density() >= 0.5 {
            return ProbeMode::Off;
        }
        if let PredicateIndex::SetSim { index, .. } = &**exact {
            let signed = sigs.signed_count() as f64;
            let expected_postings = index.avg_prefix_len() * index.avg_posting_touch();
            if signed > 0.0 && expected_postings >= signed {
                return ProbeMode::Dense;
            }
        }
        ProbeMode::Gate
    }

    /// Probe with an explicit mode, accumulating per-probe counters into
    /// `stats`. `mode` is ignored by non-signature indexes. Every mode is
    /// lossless; `Dense` may return a *superset* of the exact probe's
    /// candidates (exact rule evaluation downstream makes final candidate
    /// pairs identical).
    pub fn probe_ref_stats(
        &self,
        b_value: ValueRef<'_>,
        mode: ProbeMode,
        stats: &mut ProbeStats,
    ) -> Candidates {
        let mut scratch = String::new();
        match self {
            PredicateIndex::Equals { index, missing } => {
                let key = rendered_key(b_value, &mut scratch);
                if key.is_empty() {
                    return Candidates::All; // missing probe is "similar" to everything
                }
                let mut out = missing.clone();
                out.extend_from_slice(index.probe(key));
                stats.pairs_examined += out.len() as u64;
                stats.survived += out.len() as u64;
                Candidates::Some(out)
            }
            PredicateIndex::Range {
                index,
                missing,
                width,
                relative,
            } => {
                let Some(y) = b_value.as_num() else {
                    // dist(missing, anything) is missing -> Le satisfied.
                    return Candidates::All;
                };
                let w = if *relative {
                    if *width >= 1.0 {
                        return Candidates::All;
                    }
                    // |x-y| <= w·max(|x|,|y|) implies
                    // x ∈ [y - w|y|/(1-w), y + w|y|/(1-w)].
                    width * y.abs() / (1.0 - width)
                } else {
                    *width
                };
                let mut out = missing.clone();
                index.probe(y - w, y + w, &mut out);
                stats.pairs_examined += out.len() as u64;
                stats.survived += out.len() as u64;
                Candidates::Some(out)
            }
            PredicateIndex::SetSim {
                index,
                order,
                sim,
                threshold,
                missing,
            } => {
                let raw = rendered_key(b_value, &mut scratch);
                if raw.is_empty() {
                    return Candidates::All;
                }
                // `try_build` only constructs SetSim from set-based sims;
                // if that invariant ever breaks, skip filtering (returning
                // everything is recall-safe — the reducer re-checks rules).
                let Some(tokenizer) = sim.tokenizer() else {
                    return Candidates::All;
                };
                let ordered = order.order_tokens(tokenizer.tokenize(raw));
                let mut out = missing.clone();
                // Missing-value ids are permanent candidates: examined and
                // survived, so examined = pruned + survived stays an
                // invariant.
                stats.pairs_examined += missing.len() as u64;
                stats.survived += missing.len() as u64;
                index.probe_gated(&ordered, *sim, *threshold, None, &mut out, stats);
                Candidates::Some(out)
            }
            PredicateIndex::Signature { sigs, exact } => {
                Self::probe_signature(sigs, exact, b_value, mode, stats)
            }
            PredicateIndex::Edit {
                lengths,
                qgrams,
                unprunable,
                char_lens,
                threshold,
                missing,
            } => {
                let raw = rendered_key(b_value, &mut scratch);
                if raw.is_empty() {
                    return Candidates::All;
                }
                let y_len = raw.chars().count();
                let Some((lo, hi)) =
                    prefix::length_bounds(SimFunction::Levenshtein, *threshold, y_len)
                else {
                    return Candidates::All;
                };
                let in_bounds = |id: TupleId| {
                    let l = char_lens[id as usize];
                    l != usize::MAX && l >= lo && l <= hi
                };
                if qgrams.is_empty() && unprunable.is_empty() {
                    stats.pairs_examined += missing.len() as u64;
                    stats.survived += missing.len() as u64;
                    return Candidates::Some(missing.clone());
                }
                // Short probes can't contribute qgram evidence reliably;
                // fall back to the length filter alone.
                if y_len < QGRAM {
                    let mut out = missing.clone();
                    lengths.probe(lo, hi, &mut out);
                    stats.pairs_examined += out.len() as u64;
                    stats.survived += out.len() as u64;
                    return Candidates::Some(out);
                }
                let mut out: Vec<TupleId> = missing.clone();
                stats.pairs_examined += missing.len() as u64;
                stats.survived += missing.len() as u64;
                for id in unprunable.iter().copied() {
                    stats.pairs_examined += 1;
                    if in_bounds(id) {
                        stats.survived += 1;
                        out.push(id);
                    } else {
                        stats.pruned_by_exact += 1;
                    }
                }
                for g in falcon_textsim::tokenize::qgrams(raw, QGRAM) {
                    if let Some(list) = qgrams.get(&g) {
                        for id in list.iter().copied() {
                            stats.pairs_examined += 1;
                            if in_bounds(id) {
                                stats.survived += 1;
                                out.push(id);
                            } else {
                                stats.pruned_by_exact += 1;
                            }
                        }
                    }
                }
                Candidates::Some(out)
            }
        }
    }

    /// Probe a signature bundle in the given mode. Split out of
    /// [`PredicateIndex::probe_ref_stats`] to keep the borrow of the
    /// rendered-key scratch local.
    fn probe_signature(
        sigs: &SignatureIndex,
        exact: &PredicateIndex,
        b_value: ValueRef<'_>,
        mode: ProbeMode,
        stats: &mut ProbeStats,
    ) -> Candidates {
        // The static verifier only admits SetSim inners; the fallback arm
        // keeps this total (an ungated exact probe is always lossless).
        let PredicateIndex::SetSim {
            index,
            order,
            sim,
            threshold,
            missing,
        } = exact
        else {
            return exact.probe_ref_stats(b_value, ProbeMode::Off, stats);
        };
        let mut scratch = String::new();
        let raw = rendered_key(b_value, &mut scratch);
        if raw.is_empty() {
            return Candidates::All;
        }
        let Some(tokenizer) = sim.tokenizer() else {
            return Candidates::All;
        };
        let tokens = tokenizer.tokenize(raw);
        stats.pairs_examined += missing.len() as u64;
        stats.survived += missing.len() as u64;
        if mode == ProbeMode::Off || tokens.is_empty() {
            let ordered = order.order_tokens(tokens);
            let mut out = missing.clone();
            index.probe_gated(&ordered, *sim, *threshold, None, &mut out, stats);
            return Candidates::Some(out);
        }
        let probe = ProbeSig::build(&tokens, sigs.words());
        let y_len = tokens.len();
        if mode == ProbeMode::Gate {
            let ordered = order.order_tokens(tokens);
            let mut out = missing.clone();
            index.probe_gated(
                &ordered,
                *sim,
                *threshold,
                Some((sigs, &probe)),
                &mut out,
                stats,
            );
            return Candidates::Some(out);
        }
        // Dense: one flat pass over the fingerprint column, no postings.
        let bounds = prefix::length_bounds(*sim, *threshold, y_len);
        let mut bm = CandidateBitmap::new(sigs.len());
        for id in missing {
            bm.insert(*id);
        }
        for id in 0..sigs.len() as TupleId {
            let size = sigs.size(id);
            if size == SIG_NO_TOKENS {
                // Tokenless tuples are never returned by the exact probe
                // either (they live on the missing list when the value is
                // absent, and match nothing when it tokenizes empty).
                continue;
            }
            stats.pairs_examined += 1;
            let x_len = size as usize;
            if let Some(need) = prefix::required_overlap(*sim, *threshold, x_len, y_len) {
                if !sigs.may_overlap(id, &probe, need) {
                    stats.pruned_by_signature += 1;
                    continue;
                }
            }
            if let Some((lo, hi)) = bounds {
                if x_len < lo || x_len > hi {
                    stats.pruned_by_exact += 1;
                    continue;
                }
            }
            stats.survived += 1;
            bm.insert(id);
        }
        Candidates::Bitmap(bm)
    }

    /// Estimated memory footprint in bytes (gates physical-operator
    /// selection against the mapper memory budget).
    pub fn estimated_bytes(&self) -> usize {
        match self {
            PredicateIndex::Equals { index, missing } => {
                index.estimated_bytes() + missing.len() * 4
            }
            PredicateIndex::Range { index, missing, .. } => {
                index.estimated_bytes() + missing.len() * 4
            }
            PredicateIndex::SetSim {
                index,
                order,
                missing,
                ..
            } => index.estimated_bytes() + order.estimated_bytes() + missing.len() * 4,
            PredicateIndex::Signature { sigs, exact } => {
                sigs.estimated_bytes() + exact.estimated_bytes()
            }
            PredicateIndex::Edit {
                lengths,
                qgrams,
                unprunable,
                char_lens,
                missing,
                ..
            } => {
                lengths.estimated_bytes()
                    + qgrams
                        .iter()
                        .map(|(k, v)| k.len() + 48 + v.len() * 4)
                        .sum::<usize>()
                    + (unprunable.len() + missing.len()) * 4
                    + char_lens.len() * 8
            }
        }
    }
}

/// Render a probe value into `scratch` only when a numeric needs
/// formatting; nulls are `""` and strings borrow the columnar slice.
fn rendered_key<'a>(v: ValueRef<'a>, scratch: &'a mut String) -> &'a str {
    match v {
        ValueRef::Null => "",
        ValueRef::Str(s) => s,
        ValueRef::Num(_) => {
            v.render_into(scratch);
            scratch
        }
    }
}

/// Build the prefix-filter bundle for one set-similarity predicate in a
/// single columnar pass, optionally populating a signature column from
/// the same tokenization (`sig_words = Some(w)` → a
/// [`PredicateIndex::Signature`] wrapping the exact bundle).
fn build_setsim(
    a: &Table,
    attr_idx: usize,
    sim: SimFunction,
    threshold: f64,
    order: Option<TokenOrder>,
    sig_words: Option<usize>,
) -> Result<PredicateIndex, IndexError> {
    let tokenizer = sim.tokenizer().ok_or_else(|| IndexError::NotSetBased {
        sim: format!("{sim:?}"),
    })?;
    let order = match order {
        Some(o) => o,
        None => {
            // No prebuilt order: one extra rendered pass to count token
            // frequencies.
            let mut rendered: Vec<String> = Vec::with_capacity(a.len());
            a.for_each_rendered(attr_idx, |_, s| rendered.push(s.to_string()));
            token_order_for(rendered.iter().map(String::as_str), tokenizer)
        }
    };
    let mut index = PrefixIndex::new();
    let mut missing = Vec::new();
    let mut sigs = sig_words.map(|w| SignatureIndex::new(a.len(), w));
    a.for_each_rendered(attr_idx, |id, s| {
        if s.is_empty() {
            missing.push(id);
            index.insert_tokens(id, Vec::new(), sim, threshold);
            return;
        }
        let tokens = tokenizer.tokenize(s);
        if let Some(sigs) = sigs.as_mut() {
            sigs.insert(id, &tokens);
        }
        index.insert_tokens(id, order.order_tokens(tokens), sim, threshold);
    });
    let exact = PredicateIndex::SetSim {
        index,
        order,
        sim,
        threshold,
        missing,
    };
    Ok(match sigs {
        Some(sigs) => PredicateIndex::Signature {
            sigs,
            exact: Box::new(exact),
        },
        None => exact,
    })
}

/// Compute a global token order (ascending frequency) for an attribute.
pub fn token_order_for<'a>(
    values: impl Iterator<Item = &'a str>,
    tokenizer: Tokenizer,
) -> TokenOrder {
    let mut freq: HashMap<String, usize> = HashMap::new();
    for v in values {
        for t in tokenizer.tokenize(v) {
            *freq.entry(t).or_default() += 1;
        }
    }
    TokenOrder::from_frequencies(freq.into_iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_table::{AttrType, Schema};

    fn table() -> Table {
        let schema = Schema::new([
            ("title", AttrType::Str),
            ("year", AttrType::Str),
            ("price", AttrType::Num),
        ]);
        Table::new(
            "A",
            schema,
            vec![
                vec![
                    Value::str("the quick brown fox"),
                    Value::str("1999"),
                    Value::num(10.0),
                ],
                vec![Value::str("lazy dog"), Value::str("2001"), Value::num(25.0)],
                vec![
                    Value::str("quick brown foxes"),
                    Value::str("1999"),
                    Value::Null,
                ],
                vec![Value::Null, Value::Null, Value::num(11.0)],
            ],
        )
    }

    #[test]
    fn from_predicate_classification() {
        let w = Tokenizer::Word;
        assert!(matches!(
            FilterSpec::from_predicate(SimFunction::ExactMatch, "year", true, 0.5),
            Some(FilterSpec::Equals { .. })
        ));
        assert!(matches!(
            FilterSpec::from_predicate(SimFunction::Jaccard(w), "title", true, 0.6),
            Some(FilterSpec::SetSim { .. })
        ));
        assert!(matches!(
            FilterSpec::from_predicate(SimFunction::AbsDiff, "price", false, 10.0),
            Some(FilterSpec::Range { .. })
        ));
        assert!(matches!(
            FilterSpec::from_predicate(SimFunction::Levenshtein, "title", true, 0.8),
            Some(FilterSpec::EditSim { .. })
        ));
        // Dissimilarity predicates are unfilterable.
        assert_eq!(
            FilterSpec::from_predicate(SimFunction::Jaccard(w), "title", false, 0.6),
            None
        );
        assert_eq!(
            FilterSpec::from_predicate(SimFunction::AbsDiff, "price", true, 10.0),
            None
        );
        // exact_match <= 0.5 ("not equal") is unfilterable.
        assert_eq!(
            FilterSpec::from_predicate(SimFunction::ExactMatch, "year", false, 0.5),
            None
        );
    }

    #[test]
    fn equals_probe() {
        let idx = PredicateIndex::build(
            &table(),
            &FilterSpec::Equals {
                a_attr: "year".into(),
            },
            None,
        );
        match idx.probe(&Value::str("1999")) {
            Candidates::Some(mut ids) => {
                ids.sort_unstable();
                // 0 and 2 share the year; 3 has a missing year and is a
                // permanent candidate.
                assert_eq!(ids, vec![0, 2, 3]);
            }
            Candidates::All => panic!("expected Some"),
            Candidates::Bitmap(_) => panic!("expected Some"),
        }
        // Missing probe value is "similar" to everything.
        assert_eq!(idx.probe(&Value::Null), Candidates::All);
    }

    #[test]
    fn range_probe_includes_missing() {
        let idx = PredicateIndex::build(
            &table(),
            &FilterSpec::Range {
                a_attr: "price".into(),
                width: 5.0,
                relative: false,
            },
            None,
        );
        match idx.probe(&Value::num(12.0)) {
            Candidates::Some(mut ids) => {
                ids.sort_unstable();
                // 10.0 and 11.0 in range; id 2 missing -> always candidate.
                assert_eq!(ids, vec![0, 2, 3]);
            }
            Candidates::All => panic!(),
            Candidates::Bitmap(_) => panic!("expected Some"),
        }
        // Missing probe satisfies dist <= v for every A tuple.
        assert_eq!(idx.probe(&Value::Null), Candidates::All);
    }

    #[test]
    fn rel_range_probe() {
        let idx = PredicateIndex::build(
            &table(),
            &FilterSpec::Range {
                a_attr: "price".into(),
                width: 0.2,
                relative: true,
            },
            None,
        );
        match idx.probe(&Value::num(10.0)) {
            Candidates::Some(mut ids) => {
                ids.sort_unstable();
                // w' = 0.2·10/0.8 = 2.5 -> [7.5, 12.5]: ids 0 (10), 3 (11),
                // plus missing id 2.
                assert_eq!(ids, vec![0, 2, 3]);
            }
            Candidates::All => panic!(),
            Candidates::Bitmap(_) => panic!("expected Some"),
        }
    }

    #[test]
    fn setsim_probe() {
        let idx = PredicateIndex::build(
            &table(),
            &FilterSpec::SetSim {
                a_attr: "title".into(),
                sim: SimFunction::Jaccard(Tokenizer::Word),
                threshold: 0.4,
            },
            None,
        );
        match idx.probe(&Value::str("quick brown fox")) {
            Candidates::Some(mut ids) => {
                ids.sort_unstable();
                ids.dedup();
                assert!(ids.contains(&0));
                assert!(ids.contains(&2));
                assert!(!ids.contains(&1));
            }
            Candidates::All => panic!(),
            Candidates::Bitmap(_) => panic!("expected Some"),
        }
    }

    #[test]
    fn editsim_probe_lossless() {
        let idx = PredicateIndex::build(
            &table(),
            &FilterSpec::EditSim {
                a_attr: "title".into(),
                threshold: 0.8,
            },
            None,
        );
        // "the quick brown fox" vs itself with one typo: sim >= 0.8.
        match idx.probe(&Value::str("the quick browm fox")) {
            Candidates::Some(ids) => assert!(ids.contains(&0), "{ids:?}"),
            Candidates::All => {}
            Candidates::Bitmap(bm) => assert!(bm.contains(0)),
        }
        assert_eq!(idx.probe(&Value::Null), Candidates::All);
    }

    /// Brute-force losslessness across all four filter kinds.
    #[test]
    fn all_filters_lossless() {
        use falcon_textsim::SimContext;
        let a = table();
        let ctx = SimContext::empty();
        let b_vals = [
            Value::str("the quick brown fox"),
            Value::str("lazy dogs"),
            Value::str("1999"),
            Value::num(9.0),
            Value::Null,
        ];
        let specs: Vec<(FilterSpec, SimFunction, bool, f64, &str)> = vec![
            (
                FilterSpec::Equals {
                    a_attr: "year".into(),
                },
                SimFunction::ExactMatch,
                true,
                0.5,
                "year",
            ),
            (
                FilterSpec::SetSim {
                    a_attr: "title".into(),
                    sim: SimFunction::Jaccard(Tokenizer::Word),
                    threshold: 0.5,
                },
                SimFunction::Jaccard(Tokenizer::Word),
                true,
                0.5,
                "title",
            ),
            (
                FilterSpec::Range {
                    a_attr: "price".into(),
                    width: 3.0,
                    relative: false,
                },
                SimFunction::AbsDiff,
                false,
                3.0,
                "price",
            ),
            (
                FilterSpec::EditSim {
                    a_attr: "title".into(),
                    threshold: 0.7,
                },
                SimFunction::Levenshtein,
                true,
                0.7,
                "title",
            ),
        ];
        for (spec, sim, gt, v, attr) in specs {
            let idx = PredicateIndex::build(&a, &spec, None);
            for b in &b_vals {
                let cands = idx.probe(b);
                for row in a.rows() {
                    let av = row.value(a.schema().index_of(attr).unwrap());
                    let score = sim.score_str(&av.render(), &b.render(), &ctx);
                    // Missing values are maximally similar: they satisfy
                    // every filterable predicate.
                    let satisfied = match (score, gt) {
                        (Some(s), true) => s > v,
                        (Some(s), false) => s <= v,
                        (None, _) => true,
                    };
                    if satisfied {
                        match &cands {
                            Candidates::All => {}
                            Candidates::Some(ids) => assert!(
                                ids.contains(&row.id),
                                "{spec:?} missed a={} for b={b:?}",
                                row.id
                            ),
                            Candidates::Bitmap(bm) => assert!(
                                bm.contains(row.id),
                                "{spec:?} missed a={} for b={b:?}",
                                row.id
                            ),
                        }
                    }
                }
            }
        }
    }
}
