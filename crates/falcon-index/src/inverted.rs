//! Global token ordering and prefix inverted index (prefix + position
//! filters).
//!
//! Tokens are globally ordered by ascending corpus frequency (rare first),
//! the standard ordering that makes prefixes maximally selective. The
//! prefix index stores, for every `A` tuple, postings for the first
//! `prefix_len` tokens of its ordered token list along with each token's
//! position — enough to run both the prefix filter (share ≥ 1 prefix
//! token) and the position filter (enough *remaining* tokens to reach the
//! required overlap).

use crate::signature::{ProbeSig, ProbeStats, SignatureIndex};
use falcon_table::TupleId;
use falcon_textsim::prefix;
use falcon_textsim::{SimFunction, Tokenizer};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Global token order by ascending frequency. Unseen tokens order first
/// (frequency 0), then by the token text for determinism.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TokenOrder {
    rank: HashMap<String, u32>,
}

impl TokenOrder {
    /// Build from `(token, frequency)` pairs (e.g. the output of the
    /// token-counting MR job of Section 7.5).
    pub fn from_frequencies(freqs: impl Iterator<Item = (String, usize)>) -> Self {
        let mut items: Vec<(String, usize)> = freqs.collect();
        items.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        let rank = items
            .into_iter()
            .enumerate()
            .map(|(i, (tok, _))| (tok, i as u32))
            .collect();
        Self { rank }
    }

    /// Rank of a token (lower = rarer = earlier). Unseen tokens rank before
    /// everything (`None` is sorted first by [`TokenOrder::order_tokens`]).
    pub fn rank(&self, token: &str) -> Option<u32> {
        self.rank.get(token).copied()
    }

    /// Sort a token set by this global order (unseen-first, then rank, then
    /// text).
    pub fn order_tokens(&self, tokens: impl IntoIterator<Item = String>) -> Vec<String> {
        let mut toks: Vec<String> = tokens.into_iter().collect();
        // Sort by text first, then stably by rank with one cached lookup
        // per token (`Option<u32>` orders `None` — unseen — first); ties in
        // rank keep the text order from the first pass.
        toks.sort_unstable();
        toks.sort_by_cached_key(|t| self.rank(t));
        toks
    }

    /// Number of distinct tokens seen.
    pub fn len(&self) -> usize {
        self.rank.len()
    }

    /// True iff no tokens were seen.
    pub fn is_empty(&self) -> bool {
        self.rank.is_empty()
    }

    /// Estimated memory footprint in bytes.
    pub fn estimated_bytes(&self) -> usize {
        self.rank.keys().map(|k| k.len() + 40).sum()
    }
}

/// Prefix inverted index over table `A` for one `(attribute, tokenizer,
/// sim, threshold)` combination.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PrefixIndex {
    /// token -> postings of (tuple id, token position in the tuple's
    /// ordered token list).
    postings: HashMap<String, Vec<(TupleId, u32)>>,
    /// Token-set size per tuple id (dense, NAN-like sentinel = `u32::MAX`
    /// for tuples with no tokens).
    set_sizes: Vec<u32>,
    posting_count: usize,
}

/// Sentinel size for tuples whose value produced no tokens.
const NO_TOKENS: u32 = u32::MAX;

impl PrefixIndex {
    /// Create an empty index, to be filled with [`PrefixIndex::insert`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Build the index for predicate `sim(x, ·) >= threshold` from the `A`
    /// side values. `values` yields `(id, raw value)`; ids must be dense
    /// from 0 (standard for [`falcon_table::Table`]).
    pub fn build<'a>(
        values: impl Iterator<Item = (TupleId, &'a str)>,
        tokenizer: Tokenizer,
        sim: SimFunction,
        threshold: f64,
        order: &TokenOrder,
    ) -> Self {
        let mut idx = Self::new();
        for (id, raw) in values {
            idx.insert(id, raw, tokenizer, sim, threshold, order);
        }
        idx
    }

    /// Insert one `(id, raw value)` entry: the incremental form used by
    /// the columnar one-pass index builds. Empty values leave the id
    /// marked token-less (it is handled by the caller's missing list).
    pub fn insert(
        &mut self,
        id: TupleId,
        raw: &str,
        tokenizer: Tokenizer,
        sim: SimFunction,
        threshold: f64,
        order: &TokenOrder,
    ) {
        if raw.is_empty() {
            self.insert_tokens(id, Vec::new(), sim, threshold);
            return;
        }
        self.insert_tokens(
            id,
            order.order_tokens(tokenizer.tokenize(raw)),
            sim,
            threshold,
        );
    }

    /// Insert one entry from its already-ordered token list. This is the
    /// tokenize-once form used when the same columnar pass also feeds a
    /// [`SignatureIndex`]. Empty token lists leave the id marked
    /// token-less.
    pub fn insert_tokens(
        &mut self,
        id: TupleId,
        ordered: Vec<String>,
        sim: SimFunction,
        threshold: f64,
    ) {
        if self.set_sizes.len() <= id as usize {
            self.set_sizes.resize(id as usize + 1, NO_TOKENS);
        }
        if ordered.is_empty() {
            return;
        }
        self.set_sizes[id as usize] = ordered.len() as u32;
        let p = prefix::prefix_len(sim, threshold, ordered.len());
        for (pos, tok) in ordered.into_iter().take(p).enumerate() {
            self.postings.entry(tok).or_default().push((id, pos as u32));
            self.posting_count += 1;
        }
    }

    /// Token-set size of an indexed tuple (`None` if it had no tokens).
    pub fn set_size(&self, id: TupleId) -> Option<usize> {
        match self.set_sizes.get(id as usize) {
            Some(&s) if s != NO_TOKENS => Some(s as usize),
            _ => None,
        }
    }

    /// `FindProbableCandidates` for a set-similarity predicate: probe with
    /// a raw `B`-side value and append every `A` id that passes the prefix,
    /// position and length filters. The result may contain duplicates;
    /// callers dedup after collecting across predicates.
    pub fn probe(
        &self,
        raw: &str,
        tokenizer: Tokenizer,
        sim: SimFunction,
        threshold: f64,
        order: &TokenOrder,
        out: &mut Vec<TupleId>,
    ) {
        if raw.is_empty() {
            return;
        }
        let ordered = order.order_tokens(tokenizer.tokenize(raw));
        let mut stats = ProbeStats::default();
        self.probe_gated(&ordered, sim, threshold, None, out, &mut stats);
    }

    /// Token-level form of [`PrefixIndex::probe`] with an optional
    /// signature gate and probe counters. When `gate` is supplied, each
    /// posting is first tested with the lossless popcount bound
    /// ([`SignatureIndex::may_overlap`]) before the exact length and
    /// position filters run — a signature refutation is a proof the pair
    /// cannot reach the threshold, so gating never changes which true
    /// candidates survive, only how much exact filtering runs.
    pub fn probe_gated(
        &self,
        ordered: &[String],
        sim: SimFunction,
        threshold: f64,
        gate: Option<(&SignatureIndex, &ProbeSig)>,
        out: &mut Vec<TupleId>,
        stats: &mut ProbeStats,
    ) {
        let y_len = ordered.len();
        if y_len == 0 {
            return;
        }
        let p = prefix::prefix_len(sim, threshold, y_len);
        let bounds = prefix::length_bounds(sim, threshold, y_len);
        for (j, tok) in ordered.iter().take(p).enumerate() {
            let Some(list) = self.postings.get(tok) else {
                continue;
            };
            for &(id, i) in list {
                stats.pairs_examined += 1;
                let x_len = self.set_sizes[id as usize] as usize;
                let need = prefix::required_overlap(sim, threshold, x_len, y_len);
                // Signature pre-filter: a few popcounts refute the pair
                // before any exact filter arithmetic.
                if let (Some((sigs, probe)), Some(need)) = (gate, need) {
                    if !sigs.may_overlap(id, probe, need) {
                        stats.pruned_by_signature += 1;
                        continue;
                    }
                }
                // Length filter.
                if let Some((lo, hi)) = bounds {
                    if x_len < lo || x_len > hi {
                        stats.pruned_by_exact += 1;
                        continue;
                    }
                }
                // Position filter: tokens at positions i (in x) and j (in
                // y) match; the best remaining overlap is this shared token
                // plus whatever follows on both sides.
                if let Some(need) = need {
                    let remaining = 1 + (x_len - i as usize - 1).min(y_len - j - 1);
                    if remaining < need {
                        stats.pruned_by_exact += 1;
                        continue;
                    }
                }
                stats.survived += 1;
                out.push(id);
            }
        }
    }

    /// Expected postings touched per probe token, assuming probe tokens
    /// are distributed like indexed tokens: `Σ|list|² / Σ|list|`. The
    /// planner multiplies this by the average prefix length to estimate
    /// per-probe inverted-index work.
    pub fn avg_posting_touch(&self) -> f64 {
        if self.posting_count == 0 {
            return 0.0;
        }
        self.posting_len_sum_sq() as f64 / self.posting_count as f64
    }

    /// `Σ|list|²` over the postings map. Integer accumulation: summing
    /// f64 in HashMap iteration order could differ in the last ULP
    /// between runs and flip the probe-mode planner's decision; u128
    /// sums are exact and order-free.
    fn posting_len_sum_sq(&self) -> u128 {
        self.postings
            .values()
            .map(|l| (l.len() as u128) * (l.len() as u128))
            .sum()
    }

    /// Mean prefix length over indexed (token-bearing) tuples — a proxy
    /// for the number of probe tokens that hit the postings map.
    pub fn avg_prefix_len(&self) -> f64 {
        let indexed = self.set_sizes.iter().filter(|s| **s != NO_TOKENS).count();
        if indexed == 0 {
            return 0.0;
        }
        self.posting_count as f64 / indexed as f64
    }

    /// Estimated memory footprint in bytes.
    pub fn estimated_bytes(&self) -> usize {
        let key_bytes: usize = self.postings.keys().map(|k| k.len() + 48).sum();
        key_bytes
            + self.posting_count * std::mem::size_of::<(TupleId, u32)>()
            + self.set_sizes.len() * 4
    }

    /// Number of postings.
    pub fn len(&self) -> usize {
        self.posting_count
    }

    /// True iff no postings.
    pub fn is_empty(&self) -> bool {
        self.posting_count == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_textsim::sets;

    fn order_for(values: &[&str], tokenizer: Tokenizer) -> TokenOrder {
        let mut freq: HashMap<String, usize> = HashMap::new();
        for v in values {
            for t in tokenizer.tokenize(v) {
                *freq.entry(t).or_default() += 1;
            }
        }
        TokenOrder::from_frequencies(freq.into_iter())
    }

    #[test]
    fn token_order_rare_first() {
        let order = order_for(&["a b", "a c", "a d"], Tokenizer::Word);
        // "a" appears 3 times -> last.
        let sorted = order.order_tokens(vec!["a".into(), "b".into()]);
        assert_eq!(sorted, vec!["b".to_string(), "a".to_string()]);
        // Unseen tokens come first.
        let sorted = order.order_tokens(vec!["a".into(), "zzz".into()]);
        assert_eq!(sorted[0], "zzz");
    }

    #[test]
    fn probe_finds_similar_and_skips_dissimilar() {
        let sim = SimFunction::Jaccard(Tokenizer::Word);
        let a_vals = [
            "the quick brown fox",
            "lazy dogs sleep",
            "quick brown foxes run",
        ];
        let order = order_for(&a_vals, Tokenizer::Word);
        let idx = PrefixIndex::build(
            a_vals.iter().enumerate().map(|(i, v)| (i as TupleId, *v)),
            Tokenizer::Word,
            sim,
            0.5,
            &order,
        );
        let mut out = Vec::new();
        idx.probe(
            "the quick brown fox",
            Tokenizer::Word,
            sim,
            0.5,
            &order,
            &mut out,
        );
        out.sort_unstable();
        out.dedup();
        assert!(out.contains(&0));
        assert!(!out.contains(&1));
    }

    /// Exhaustive soundness: probing never misses a tuple whose actual
    /// similarity meets the threshold.
    #[test]
    fn probe_is_lossless() {
        let tok = Tokenizer::Word;
        let a_vals = [
            "alpha beta gamma",
            "alpha beta",
            "delta epsilon zeta eta",
            "beta gamma delta",
            "single",
            "",
        ];
        let b_vals = [
            "alpha beta gamma",
            "gamma delta",
            "single",
            "zeta eta theta",
            "nothing shared here",
        ];
        let order = order_for(&a_vals, tok);
        for simf in [
            SimFunction::Jaccard(tok),
            SimFunction::Dice(tok),
            SimFunction::Cosine(tok),
            SimFunction::Overlap(tok),
        ] {
            for t in [0.3, 0.5, 0.7, 0.9] {
                let idx = PrefixIndex::build(
                    a_vals.iter().enumerate().map(|(i, v)| (i as TupleId, *v)),
                    tok,
                    simf,
                    t,
                    &order,
                );
                for b in &b_vals {
                    let mut cands = Vec::new();
                    idx.probe(b, tok, simf, t, &order, &mut cands);
                    for (i, a) in a_vals.iter().enumerate() {
                        let (x, y) = (tok.tokenize(a), tok.tokenize(b));
                        if x.is_empty() || y.is_empty() {
                            continue;
                        }
                        let score = match simf {
                            SimFunction::Jaccard(_) => sets::jaccard(&x, &y),
                            SimFunction::Dice(_) => sets::dice(&x, &y),
                            SimFunction::Cosine(_) => sets::cosine(&x, &y),
                            SimFunction::Overlap(_) => sets::overlap_coefficient(&x, &y),
                            _ => unreachable!(),
                        };
                        if score >= t {
                            assert!(
                                cands.contains(&(i as TupleId)),
                                "{simf:?} t={t}: missed a={a:?} for b={b:?} (score {score})"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn empty_probe_returns_nothing() {
        let sim = SimFunction::Jaccard(Tokenizer::Word);
        let order = TokenOrder::default();
        let idx = PrefixIndex::build(
            [(0 as TupleId, "x y")].into_iter(),
            Tokenizer::Word,
            sim,
            0.5,
            &order,
        );
        let mut out = Vec::new();
        idx.probe("", Tokenizer::Word, sim, 0.5, &order, &mut out);
        assert!(out.is_empty());
    }
}
