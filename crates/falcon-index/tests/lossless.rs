//! Property test: no filter ever prunes a tuple pair that satisfies its
//! predicate — the invariant that makes Falcon's blocking lossless.

use falcon_index::spec::Candidates;
use falcon_index::{FilterSpec, PredicateIndex};
use falcon_table::{AttrType, Schema, Table, Value};
use falcon_textsim::{SimContext, SimFunction, Tokenizer};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        2 => proptest::collection::vec("[a-d]{1,3}", 0..6).prop_map(|v| Value::str(v.join(" "))),
        1 => (0i64..40).prop_map(|x| Value::Num(x as f64)),
        1 => Just(Value::Null),
    ]
}

fn table_strategy() -> impl Strategy<Value = Table> {
    proptest::collection::vec(value_strategy(), 1..25).prop_map(|vals| {
        let schema = Schema::new([("x", AttrType::Str)]);
        Table::new("A", schema, vals.into_iter().map(|v| vec![v]))
    })
}

fn check(spec: FilterSpec, sim: SimFunction, gt: bool, v: f64, a: &Table, b_vals: &[Value]) {
    let ctx = SimContext::empty();
    let idx = PredicateIndex::build(a, &spec, None);
    for b in b_vals {
        let cands = idx.probe(b);
        for row in a.rows() {
            let score = sim.score_str(&row.value(0).render(), &b.render(), &ctx);
            // Missing values are maximally similar: they satisfy every
            // filterable predicate (see spec.rs module docs).
            let satisfied = match (score, gt) {
                (Some(s), true) => s > v,
                (Some(s), false) => s <= v,
                (None, _) => true,
            };
            if satisfied {
                match &cands {
                    Candidates::All => {}
                    Candidates::Some(ids) => assert!(
                        ids.contains(&row.id),
                        "{spec:?} pruned satisfying pair: a={:?} b={:?} score={score:?}",
                        row.value(0),
                        b
                    ),
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn setsim_filters_lossless(
        a in table_strategy(),
        b_vals in proptest::collection::vec(value_strategy(), 1..10),
        t in 0.05f64..=1.0,
    ) {
        for sim in [
            SimFunction::Jaccard(Tokenizer::Word),
            SimFunction::Dice(Tokenizer::Word),
            SimFunction::Cosine(Tokenizer::Word),
            SimFunction::Overlap(Tokenizer::Word),
            SimFunction::Jaccard(Tokenizer::QGram(3)),
        ] {
            check(
                FilterSpec::SetSim { a_attr: "x".into(), sim, threshold: t },
                sim,
                true,
                t,
                &a,
                &b_vals,
            );
        }
    }

    #[test]
    fn equals_filter_lossless(
        a in table_strategy(),
        b_vals in proptest::collection::vec(value_strategy(), 1..10),
    ) {
        check(
            FilterSpec::Equals { a_attr: "x".into() },
            SimFunction::ExactMatch,
            true,
            0.5,
            &a,
            &b_vals,
        );
    }

    #[test]
    fn range_filter_lossless(
        a in table_strategy(),
        b_vals in proptest::collection::vec(value_strategy(), 1..10),
        w in 0.0f64..20.0,
    ) {
        check(
            FilterSpec::Range { a_attr: "x".into(), width: w, relative: false },
            SimFunction::AbsDiff,
            false,
            w,
            &a,
            &b_vals,
        );
        if w < 1.0 {
            check(
                FilterSpec::Range { a_attr: "x".into(), width: w, relative: true },
                SimFunction::RelDiff,
                false,
                w,
                &a,
                &b_vals,
            );
        }
    }

    #[test]
    fn edit_filter_lossless(
        a in table_strategy(),
        b_vals in proptest::collection::vec(value_strategy(), 1..10),
        t in 0.05f64..=1.0,
    ) {
        check(
            FilterSpec::EditSim { a_attr: "x".into(), threshold: t },
            SimFunction::Levenshtein,
            true,
            t,
            &a,
            &b_vals,
        );
    }
}
