//! Property test: no filter ever prunes a tuple pair that satisfies its
//! predicate — the invariant that makes Falcon's blocking lossless.

use falcon_index::spec::Candidates;
use falcon_index::{FilterSpec, PredicateIndex};
use falcon_table::{AttrType, Schema, Table, Value};
use falcon_textsim::{SimContext, SimFunction, Tokenizer};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        2 => proptest::collection::vec("[a-d]{1,3}", 0..6).prop_map(|v| Value::str(v.join(" "))),
        1 => (0i64..40).prop_map(|x| Value::Num(x as f64)),
        1 => Just(Value::Null),
    ]
}

fn table_strategy() -> impl Strategy<Value = Table> {
    proptest::collection::vec(value_strategy(), 1..25).prop_map(|vals| {
        let schema = Schema::new([("x", AttrType::Str)]);
        Table::new("A", schema, vals.into_iter().map(|v| vec![v]))
    })
}

/// Adversarial values for the signature pre-filter: multi-byte Unicode
/// tokens (token bits must come from whole-codepoint hashing, not byte
/// truncation), numeric strings (rendered-key path), and Nulls
/// (missing-value semantics). A tiny token alphabet forces heavy bit
/// collisions in narrow signatures.
fn adversarial_value_strategy() -> impl Strategy<Value = Value> {
    let token = prop_oneof![
        Just("é".to_string()),
        Just("漢字".to_string()),
        Just("ßß".to_string()),
        Just("🦅".to_string()),
        Just("naïve".to_string()),
        Just("12.5".to_string()),
        Just("0001".to_string()),
        "[a-c]{1,2}".prop_map(|s| s),
    ];
    prop_oneof![
        4 => proptest::collection::vec(token, 0..7).prop_map(|v| Value::str(v.join(" "))),
        1 => (0i64..40).prop_map(|x| Value::Num(x as f64)),
        1 => Just(Value::Null),
    ]
}

fn adversarial_table_strategy() -> impl Strategy<Value = Table> {
    proptest::collection::vec(adversarial_value_strategy(), 1..20).prop_map(|vals| {
        let schema = Schema::new([("x", AttrType::Str)]);
        Table::new("A", schema, vals.into_iter().map(|v| vec![v]))
    })
}

/// Thresholds that sit exactly on — or a hair around — the similarity
/// values small token sets actually produce, where an off-by-one in the
/// required-overlap ceiling would surface as a lost candidate.
fn near_threshold_strategy() -> impl Strategy<Value = f64> {
    let anchors = prop_oneof![
        Just(1.0 / 3.0),
        Just(0.5),
        Just(2.0 / 3.0),
        Just(0.25),
        Just(0.75),
    ];
    prop_oneof![
        3 => (anchors, 0u8..3).prop_map(|(t, k)| match k {
            0 => t,
            1 => t - 1e-9,
            _ => t + 1e-9,
        }),
        1 => 0.05f64..=1.0,
    ]
}

fn check(spec: FilterSpec, sim: SimFunction, gt: bool, v: f64, a: &Table, b_vals: &[Value]) {
    let ctx = SimContext::empty();
    let idx = PredicateIndex::build(a, &spec, None);
    for b in b_vals {
        let cands = idx.probe(b);
        for row in a.rows() {
            let score = sim.score_str(&row.value(0).render(), &b.render(), &ctx);
            // Missing values are maximally similar: they satisfy every
            // filterable predicate (see spec.rs module docs).
            let satisfied = match (score, gt) {
                (Some(s), true) => s > v,
                (Some(s), false) => s <= v,
                (None, _) => true,
            };
            if satisfied {
                match &cands {
                    Candidates::All => {}
                    Candidates::Some(ids) => assert!(
                        ids.contains(&row.id),
                        "{spec:?} pruned satisfying pair: a={:?} b={:?} score={score:?}",
                        row.value(0),
                        b
                    ),
                    Candidates::Bitmap(bm) => assert!(
                        bm.contains(row.id),
                        "{spec:?} pruned satisfying pair: a={:?} b={:?} score={score:?}",
                        row.value(0),
                        b
                    ),
                }
            }
        }
    }
}

/// Sorted, deduplicated id set of a candidate answer (`None` = All).
fn cand_set(c: &Candidates) -> Option<Vec<falcon_table::TupleId>> {
    match c {
        Candidates::All => None,
        Candidates::Some(ids) => {
            let mut v = ids.clone();
            v.sort_unstable();
            v.dedup();
            Some(v)
        }
        Candidates::Bitmap(bm) => Some(bm.to_vec()),
    }
}

/// Signature-specific losslessness: probe the signature-wrapped index in
/// every mode (exact-only, gated, dense) and check that none of them ever
/// loses a ground-truth candidate of the exact-only path, that gating
/// only shrinks the exact answer, and that the probe counters balance.
fn check_signature(sim: SimFunction, t: f64, words: usize, a: &Table, b_vals: &[Value]) {
    use falcon_index::spec::ProbeMode;
    use falcon_index::ProbeStats;
    let ctx = SimContext::empty();
    let spec = FilterSpec::SetSim {
        a_attr: "x".into(),
        sim,
        threshold: t,
    }
    .with_signature(words);
    let idx = PredicateIndex::build(a, &spec, None);
    for b in b_vals {
        let mut per_mode = Vec::new();
        for mode in [ProbeMode::Off, ProbeMode::Gate, ProbeMode::Dense] {
            let mut stats = ProbeStats::default();
            let cands = idx.probe_ref_stats(b.as_value_ref(), mode, &mut stats);
            assert_eq!(
                stats.pairs_examined,
                stats.pruned_by_signature + stats.pruned_by_exact + stats.survived,
                "{spec:?} {mode:?}: probe counters do not balance: {stats:?}"
            );
            // Dynamic losslessness per mode.
            for row in a.rows() {
                let score = sim.score_str(&row.value(0).render(), &b.render(), &ctx);
                let satisfied = match score {
                    Some(s) => s > t,
                    None => true,
                };
                if satisfied {
                    let ok = match &cands {
                        Candidates::All => true,
                        Candidates::Some(ids) => ids.contains(&row.id),
                        Candidates::Bitmap(bm) => bm.contains(row.id),
                    };
                    assert!(
                        ok,
                        "{spec:?} {mode:?} pruned satisfying pair: a={:?} b={:?} score={score:?}",
                        row.value(0),
                        b
                    );
                }
            }
            per_mode.push(cand_set(&cands));
        }
        // Gate ⊆ exact (the gate only removes provably-failing pairs);
        // Dense may add false positives but interacts with the same
        // ground truth, asserted above.
        if let (Some(exact), Some(gated)) = (&per_mode[0], &per_mode[1]) {
            assert!(
                gated.iter().all(|id| exact.contains(id)),
                "gated probe returned an id the exact probe did not: exact={exact:?} gated={gated:?}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn setsim_filters_lossless(
        a in table_strategy(),
        b_vals in proptest::collection::vec(value_strategy(), 1..10),
        t in 0.05f64..=1.0,
    ) {
        for sim in [
            SimFunction::Jaccard(Tokenizer::Word),
            SimFunction::Dice(Tokenizer::Word),
            SimFunction::Cosine(Tokenizer::Word),
            SimFunction::Overlap(Tokenizer::Word),
            SimFunction::Jaccard(Tokenizer::QGram(3)),
        ] {
            check(
                FilterSpec::SetSim { a_attr: "x".into(), sim, threshold: t },
                sim,
                true,
                t,
                &a,
                &b_vals,
            );
        }
    }

    /// Tentpole invariant: random signature widths × adversarial values
    /// (multi-byte Unicode, numeric strings, Nulls, near-threshold
    /// similarities) never lose a ground-truth candidate vs the
    /// exact-only path, in any probe mode.
    #[test]
    fn signature_prefilter_lossless(
        a in adversarial_table_strategy(),
        b_vals in proptest::collection::vec(adversarial_value_strategy(), 1..8),
        words in 1usize..=8,
        t in near_threshold_strategy(),
    ) {
        for sim in [
            SimFunction::Jaccard(Tokenizer::Word),
            SimFunction::Dice(Tokenizer::Word),
            SimFunction::Cosine(Tokenizer::QGram(2)),
            SimFunction::Overlap(Tokenizer::Word),
            SimFunction::Jaccard(Tokenizer::QGram(3)),
        ] {
            check_signature(sim, t, words, &a, &b_vals);
        }
    }

    #[test]
    fn equals_filter_lossless(
        a in table_strategy(),
        b_vals in proptest::collection::vec(value_strategy(), 1..10),
    ) {
        check(
            FilterSpec::Equals { a_attr: "x".into() },
            SimFunction::ExactMatch,
            true,
            0.5,
            &a,
            &b_vals,
        );
    }

    #[test]
    fn range_filter_lossless(
        a in table_strategy(),
        b_vals in proptest::collection::vec(value_strategy(), 1..10),
        w in 0.0f64..20.0,
    ) {
        check(
            FilterSpec::Range { a_attr: "x".into(), width: w, relative: false },
            SimFunction::AbsDiff,
            false,
            w,
            &a,
            &b_vals,
        );
        if w < 1.0 {
            check(
                FilterSpec::Range { a_attr: "x".into(), width: w, relative: true },
                SimFunction::RelDiff,
                false,
                w,
                &a,
                &b_vals,
            );
        }
    }

    #[test]
    fn edit_filter_lossless(
        a in table_strategy(),
        b_vals in proptest::collection::vec(value_strategy(), 1..10),
        t in 0.05f64..=1.0,
    ) {
        check(
            FilterSpec::EditSim { a_attr: "x".into(), threshold: t },
            SimFunction::Levenshtein,
            true,
            t,
            &a,
            &b_vals,
        );
    }
}

/// The static twin of the properties above: a spec whose configuration
/// *would* let the dynamic checks fail is refused at build time with the
/// violated proof obligation, so a lossy index can never exist.
mod static_rejection {
    use falcon_index::{FilterSpec, IndexError, Obligation, PredicateIndex};
    use falcon_table::{AttrType, Schema, Table, Value};
    use falcon_textsim::{SimFunction, Tokenizer};

    fn table() -> Table {
        let schema = Schema::new([("x", AttrType::Str)]);
        Table::new(
            "A",
            schema,
            vec![vec![Value::str("a b c")], vec![Value::Null]],
        )
    }

    fn rejected(spec: FilterSpec) -> Obligation {
        match PredicateIndex::try_build(&table(), &spec, None) {
            Err(IndexError::RecallUnsafe { obligation, .. }) => obligation,
            other => panic!("expected RecallUnsafe for {spec:?}, got {other:?}"),
        }
    }

    #[test]
    fn non_set_based_measure_is_rejected() {
        // MongeElkan carries a tokenizer but admits no prefix/length
        // bound; building a SetSim index over it would prune arbitrarily.
        let ob = rejected(FilterSpec::SetSim {
            a_attr: "x".into(),
            sim: SimFunction::MongeElkan,
            threshold: 0.5,
        });
        assert_eq!(ob, Obligation::SetBasedSim);
    }

    #[test]
    fn nonpositive_and_nonfinite_thresholds_are_rejected() {
        let jac = |threshold: f64| FilterSpec::SetSim {
            a_attr: "x".into(),
            sim: SimFunction::Jaccard(Tokenizer::Word),
            threshold,
        };
        assert_eq!(rejected(jac(0.0)), Obligation::ThresholdPositive);
        assert_eq!(rejected(jac(-1.0)), Obligation::ThresholdPositive);
        assert_eq!(rejected(jac(f64::NAN)), Obligation::ThresholdFinite);
        assert_eq!(rejected(jac(f64::INFINITY)), Obligation::ThresholdFinite);
        let edit = FilterSpec::EditSim {
            a_attr: "x".into(),
            threshold: 0.0,
        };
        assert_eq!(rejected(edit), Obligation::ThresholdPositive);
    }

    #[test]
    fn degenerate_range_widths_are_rejected() {
        let range = |width: f64, relative: bool| FilterSpec::Range {
            a_attr: "x".into(),
            width,
            relative,
        };
        assert_eq!(rejected(range(-1.0, false)), Obligation::WidthNonNegative);
        assert_eq!(rejected(range(f64::NAN, false)), Obligation::WidthFinite);
        // rel_diff ranges over [0, 2]: width >= 1 makes the probe window
        // non-invertible.
        assert_eq!(
            rejected(range(1.5, true)),
            Obligation::RelativeWidthBelowOne
        );
    }

    /// Static twin of `signature_prefilter_lossless`: any signature
    /// configuration that cannot be proved a candidate-superset is
    /// refused at build time with the violated obligation.
    #[test]
    fn unsound_signature_configs_are_rejected() {
        let setsim = FilterSpec::SetSim {
            a_attr: "x".into(),
            sim: SimFunction::Jaccard(Tokenizer::Word),
            threshold: 0.5,
        };
        // Zero-width and absurd-width signatures.
        for words in [0usize, 65, 1000] {
            let ob = rejected(FilterSpec::Signature {
                inner: Box::new(setsim.clone()),
                words,
            });
            assert_eq!(ob, Obligation::SignatureWidthValid, "words={words}");
        }
        // The popcount bound only exists for set-overlap measures: any
        // non-SetSim inner has no superset proof.
        for inner in [
            FilterSpec::Equals { a_attr: "x".into() },
            FilterSpec::Range {
                a_attr: "x".into(),
                width: 1.0,
                relative: false,
            },
            FilterSpec::EditSim {
                a_attr: "x".into(),
                threshold: 0.5,
            },
            FilterSpec::Signature {
                inner: Box::new(setsim.clone()),
                words: 2,
            },
        ] {
            let ob = rejected(FilterSpec::Signature {
                inner: Box::new(inner.clone()),
                words: 2,
            });
            assert_eq!(ob, Obligation::SignatureSuperset, "inner={inner:?}");
        }
        // Inner obligations propagate through the wrapper.
        let ob = rejected(FilterSpec::Signature {
            inner: Box::new(FilterSpec::SetSim {
                a_attr: "x".into(),
                sim: SimFunction::Jaccard(Tokenizer::Word),
                threshold: 0.0,
            }),
            words: 2,
        });
        assert_eq!(ob, Obligation::ThresholdPositive);
        // `with_signature` never wraps what it cannot prove.
        let eq = FilterSpec::Equals { a_attr: "x".into() };
        assert_eq!(eq.clone().with_signature(2), eq);
    }

    #[test]
    fn safe_specs_still_build() {
        for spec in [
            FilterSpec::Equals { a_attr: "x".into() },
            FilterSpec::SetSim {
                a_attr: "x".into(),
                sim: SimFunction::Jaccard(Tokenizer::Word),
                threshold: 0.4,
            }
            .with_signature(2),
            FilterSpec::SetSim {
                a_attr: "x".into(),
                sim: SimFunction::Jaccard(Tokenizer::Word),
                threshold: 0.4,
            },
            FilterSpec::EditSim {
                a_attr: "x".into(),
                threshold: 0.4,
            },
            FilterSpec::Range {
                a_attr: "x".into(),
                width: 2.0,
                relative: false,
            },
        ] {
            assert!(
                PredicateIndex::try_build(&table(), &spec, None).is_ok(),
                "{spec:?}"
            );
        }
    }
}
