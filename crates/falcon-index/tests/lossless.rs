//! Property test: no filter ever prunes a tuple pair that satisfies its
//! predicate — the invariant that makes Falcon's blocking lossless.

use falcon_index::spec::Candidates;
use falcon_index::{FilterSpec, PredicateIndex};
use falcon_table::{AttrType, Schema, Table, Value};
use falcon_textsim::{SimContext, SimFunction, Tokenizer};
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        2 => proptest::collection::vec("[a-d]{1,3}", 0..6).prop_map(|v| Value::str(v.join(" "))),
        1 => (0i64..40).prop_map(|x| Value::Num(x as f64)),
        1 => Just(Value::Null),
    ]
}

fn table_strategy() -> impl Strategy<Value = Table> {
    proptest::collection::vec(value_strategy(), 1..25).prop_map(|vals| {
        let schema = Schema::new([("x", AttrType::Str)]);
        Table::new("A", schema, vals.into_iter().map(|v| vec![v]))
    })
}

fn check(spec: FilterSpec, sim: SimFunction, gt: bool, v: f64, a: &Table, b_vals: &[Value]) {
    let ctx = SimContext::empty();
    let idx = PredicateIndex::build(a, &spec, None);
    for b in b_vals {
        let cands = idx.probe(b);
        for row in a.rows() {
            let score = sim.score_str(&row.value(0).render(), &b.render(), &ctx);
            // Missing values are maximally similar: they satisfy every
            // filterable predicate (see spec.rs module docs).
            let satisfied = match (score, gt) {
                (Some(s), true) => s > v,
                (Some(s), false) => s <= v,
                (None, _) => true,
            };
            if satisfied {
                match &cands {
                    Candidates::All => {}
                    Candidates::Some(ids) => assert!(
                        ids.contains(&row.id),
                        "{spec:?} pruned satisfying pair: a={:?} b={:?} score={score:?}",
                        row.value(0),
                        b
                    ),
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn setsim_filters_lossless(
        a in table_strategy(),
        b_vals in proptest::collection::vec(value_strategy(), 1..10),
        t in 0.05f64..=1.0,
    ) {
        for sim in [
            SimFunction::Jaccard(Tokenizer::Word),
            SimFunction::Dice(Tokenizer::Word),
            SimFunction::Cosine(Tokenizer::Word),
            SimFunction::Overlap(Tokenizer::Word),
            SimFunction::Jaccard(Tokenizer::QGram(3)),
        ] {
            check(
                FilterSpec::SetSim { a_attr: "x".into(), sim, threshold: t },
                sim,
                true,
                t,
                &a,
                &b_vals,
            );
        }
    }

    #[test]
    fn equals_filter_lossless(
        a in table_strategy(),
        b_vals in proptest::collection::vec(value_strategy(), 1..10),
    ) {
        check(
            FilterSpec::Equals { a_attr: "x".into() },
            SimFunction::ExactMatch,
            true,
            0.5,
            &a,
            &b_vals,
        );
    }

    #[test]
    fn range_filter_lossless(
        a in table_strategy(),
        b_vals in proptest::collection::vec(value_strategy(), 1..10),
        w in 0.0f64..20.0,
    ) {
        check(
            FilterSpec::Range { a_attr: "x".into(), width: w, relative: false },
            SimFunction::AbsDiff,
            false,
            w,
            &a,
            &b_vals,
        );
        if w < 1.0 {
            check(
                FilterSpec::Range { a_attr: "x".into(), width: w, relative: true },
                SimFunction::RelDiff,
                false,
                w,
                &a,
                &b_vals,
            );
        }
    }

    #[test]
    fn edit_filter_lossless(
        a in table_strategy(),
        b_vals in proptest::collection::vec(value_strategy(), 1..10),
        t in 0.05f64..=1.0,
    ) {
        check(
            FilterSpec::EditSim { a_attr: "x".into(), threshold: t },
            SimFunction::Levenshtein,
            true,
            t,
            &a,
            &b_vals,
        );
    }
}

/// The static twin of the properties above: a spec whose configuration
/// *would* let the dynamic checks fail is refused at build time with the
/// violated proof obligation, so a lossy index can never exist.
mod static_rejection {
    use falcon_index::{FilterSpec, IndexError, Obligation, PredicateIndex};
    use falcon_table::{AttrType, Schema, Table, Value};
    use falcon_textsim::{SimFunction, Tokenizer};

    fn table() -> Table {
        let schema = Schema::new([("x", AttrType::Str)]);
        Table::new(
            "A",
            schema,
            vec![vec![Value::str("a b c")], vec![Value::Null]],
        )
    }

    fn rejected(spec: FilterSpec) -> Obligation {
        match PredicateIndex::try_build(&table(), &spec, None) {
            Err(IndexError::RecallUnsafe { obligation, .. }) => obligation,
            other => panic!("expected RecallUnsafe for {spec:?}, got {other:?}"),
        }
    }

    #[test]
    fn non_set_based_measure_is_rejected() {
        // MongeElkan carries a tokenizer but admits no prefix/length
        // bound; building a SetSim index over it would prune arbitrarily.
        let ob = rejected(FilterSpec::SetSim {
            a_attr: "x".into(),
            sim: SimFunction::MongeElkan,
            threshold: 0.5,
        });
        assert_eq!(ob, Obligation::SetBasedSim);
    }

    #[test]
    fn nonpositive_and_nonfinite_thresholds_are_rejected() {
        let jac = |threshold: f64| FilterSpec::SetSim {
            a_attr: "x".into(),
            sim: SimFunction::Jaccard(Tokenizer::Word),
            threshold,
        };
        assert_eq!(rejected(jac(0.0)), Obligation::ThresholdPositive);
        assert_eq!(rejected(jac(-1.0)), Obligation::ThresholdPositive);
        assert_eq!(rejected(jac(f64::NAN)), Obligation::ThresholdFinite);
        assert_eq!(rejected(jac(f64::INFINITY)), Obligation::ThresholdFinite);
        let edit = FilterSpec::EditSim {
            a_attr: "x".into(),
            threshold: 0.0,
        };
        assert_eq!(rejected(edit), Obligation::ThresholdPositive);
    }

    #[test]
    fn degenerate_range_widths_are_rejected() {
        let range = |width: f64, relative: bool| FilterSpec::Range {
            a_attr: "x".into(),
            width,
            relative,
        };
        assert_eq!(rejected(range(-1.0, false)), Obligation::WidthNonNegative);
        assert_eq!(rejected(range(f64::NAN, false)), Obligation::WidthFinite);
        // rel_diff ranges over [0, 2]: width >= 1 makes the probe window
        // non-invertible.
        assert_eq!(
            rejected(range(1.5, true)),
            Obligation::RelativeWidthBelowOne
        );
    }

    #[test]
    fn safe_specs_still_build() {
        for spec in [
            FilterSpec::Equals { a_attr: "x".into() },
            FilterSpec::SetSim {
                a_attr: "x".into(),
                sim: SimFunction::Jaccard(Tokenizer::Word),
                threshold: 0.4,
            },
            FilterSpec::EditSim {
                a_attr: "x".into(),
                threshold: 0.4,
            },
            FilterSpec::Range {
                a_attr: "x".into(),
                width: 2.0,
                relative: false,
            },
        ] {
            assert!(
                PredicateIndex::try_build(&table(), &spec, None).is_ok(),
                "{spec:?}"
            );
        }
    }
}
