//! Seed-stability of parallel forest training: for a fixed master seed,
//! `Forest::train` must produce byte-identical forests at every worker
//! thread count (the per-tree seed stream makes the result independent of
//! scheduling), and identical to the sequential rescan reference. Run
//! under `--release` in CI, where thread interleaving actually varies.

use falcon_forest::{Dataset, Forest, ForestConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// A dataset with continuous, duplicated, and missing (NaN) values.
fn fixture() -> Dataset {
    let mut d = Dataset::new();
    for i in 0..150 {
        let x = if i % 11 == 0 {
            f64::NAN
        } else {
            i as f64 / 150.0
        };
        let y = ((i * 7) % 13) as f64 / 13.0;
        let z = if i % 4 == 0 { 0.5 } else { y };
        d.push(vec![x, y, z], (i * 3) % 150 >= 71);
    }
    d
}

#[test]
fn forest_identical_across_thread_counts() {
    let d = fixture();
    let cfg = ForestConfig::default();
    for seed in [1u64, 42, 0xDEAD_BEEF] {
        let baseline = Forest::train_threads(&d, &cfg, &mut SmallRng::seed_from_u64(seed), 1);
        for threads in [2, 8] {
            let f = Forest::train_threads(&d, &cfg, &mut SmallRng::seed_from_u64(seed), threads);
            assert_eq!(f, baseline, "seed {seed}, {threads} threads");
        }
        assert_eq!(
            baseline.oob_accuracy.is_some(),
            cfg.bagging,
            "seed {seed} lost OOB accounting"
        );
    }
}

#[test]
fn default_train_matches_explicit_thread_counts() {
    let d = fixture();
    let cfg = ForestConfig::default();
    let auto = Forest::train(&d, &cfg, &mut SmallRng::seed_from_u64(9));
    let one = Forest::train_threads(&d, &cfg, &mut SmallRng::seed_from_u64(9), 1);
    assert_eq!(auto, one);
}

#[test]
fn reference_rescan_trainer_is_equivalent() {
    let d = fixture();
    let cfg = ForestConfig::default();
    for seed in [5u64, 77] {
        let fast = Forest::train_threads(&d, &cfg, &mut SmallRng::seed_from_u64(seed), 8);
        let reference = Forest::train_reference(&d, &cfg, &mut SmallRng::seed_from_u64(seed));
        assert_eq!(fast, reference, "seed {seed}");
    }
}
