//! Property tests for the forest fast paths.
//!
//! 1. `FlatForest` batch kernels must be **bit-identical** to the
//!    `Node`-walking `Forest::predict` / `positive_fraction` /
//!    `disagreement` — across random datasets with NaN (missing) feature
//!    values, tiny single-example leaves, and query vectors whose arity
//!    does not match the training arity.
//! 2. Presorted-sweep training must produce the same forest as the rescan
//!    reference for the same seed, at any thread count.

use falcon_forest::{Dataset, Forest, ForestConfig, TreeConfig};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Feature values that exercise missing-value routing, duplicate runs,
/// signed zero, and plain continuous values.
fn feat() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(f64::NAN),
        Just(0.0),
        Just(-0.0),
        Just(0.5),
        Just(1.0),
        -5.0f64..5.0,
    ]
}

/// One labeled row at the maximum arity; tests truncate to the real arity.
fn row() -> impl Strategy<Value = (f64, f64, f64, f64, bool)> {
    (
        feat(),
        feat(),
        feat(),
        feat(),
        proptest::arbitrary::any::<bool>(),
    )
}

fn dataset(rows: Vec<(f64, f64, f64, f64, bool)>, arity: usize) -> Dataset {
    let mut d = Dataset::new();
    for (a, b, c, e, label) in rows {
        let mut fv = vec![a, b, c, e];
        fv.truncate(arity);
        d.push(fv, label);
    }
    d
}

fn small_forest() -> ForestConfig {
    ForestConfig {
        n_trees: 7,
        tree: TreeConfig {
            max_depth: 6,
            min_split: 2,
            features_per_node: None,
        },
        bagging: true,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Flat kernels equal the Node walk bit for bit, single and batch,
    /// including on vectors shorter/longer than the training arity.
    #[test]
    fn flat_kernels_bit_identical(
        rows in proptest::collection::vec(row(), 2..40),
        arity in 1usize..=4,
        seed in 0u64..1 << 48,
    ) {
        let d = dataset(rows, arity);
        let forest = Forest::train(&d, &small_forest(), &mut SmallRng::seed_from_u64(seed));
        let flat = forest.flatten();

        // Queries: every training vector plus arity-mismatched and
        // all-missing vectors.
        let mut queries: Vec<Vec<f64>> = d.features.clone();
        queries.push(vec![]);
        queries.push(vec![0.25]);
        queries.push(vec![0.25; 6]);
        queries.push(vec![f64::NAN; arity]);

        let preds = flat.predict_batch(&queries);
        let dis = flat.disagreement_batch(&queries);
        for (j, fv) in queries.iter().enumerate() {
            prop_assert_eq!(flat.predict(fv), forest.predict(fv), "query {}", j);
            prop_assert_eq!(preds[j], forest.predict(fv), "batch predict, query {}", j);
            prop_assert_eq!(
                flat.positive_fraction(fv).to_bits(),
                forest.positive_fraction(fv).to_bits(),
                "fraction, query {}", j
            );
            prop_assert_eq!(
                dis[j].to_bits(),
                forest.disagreement(fv).to_bits(),
                "batch disagreement, query {}", j
            );
        }
    }

    /// Presorted parallel training equals the sequential rescan reference.
    #[test]
    fn presorted_training_matches_rescan(
        rows in proptest::collection::vec(row(), 2..30),
        arity in 1usize..=4,
        seed in 0u64..1 << 48,
        threads in 1usize..=4,
    ) {
        let d = dataset(rows, arity);
        let cfg = small_forest();
        let fast = Forest::train_threads(&d, &cfg, &mut SmallRng::seed_from_u64(seed), threads);
        let reference = Forest::train_reference(&d, &cfg, &mut SmallRng::seed_from_u64(seed));
        prop_assert_eq!(fast, reference);
    }
}
