//! Feature-importance estimation: mean impurity decrease, recomputed over
//! a reference dataset. In a hands-off system nobody writes the features
//! into rules by hand, so importances are the main lens a service operator
//! has into *why* the learned blocking rules look the way they do.
//!
//! Counts are routed through the [`FlatForest`] arena: per-node class
//! counts live in two dense vectors indexed by arena row (no hashing, no
//! path-id bit-tricks that overflow past depth 63), and the accumulation
//! pass is a single ascending scan over arena rows — which is preorder per
//! tree, trees in forest order, i.e. the same float-addition order as the
//! recursive `Node` walk this replaced.

use crate::flat::{FlatForest, FLAT_LEAF};
use crate::{Dataset, Forest};

fn gini(pos: f64, neg: f64) -> f64 {
    let n = pos + neg;
    if n == 0.0 {
        return 0.0;
    }
    let p = pos / n;
    2.0 * p * (1.0 - p)
}

/// Mean-impurity-decrease importance of every feature, evaluated by
/// routing `data` through the forest. Normalized to sum to 1 when any
/// importance is positive.
pub fn feature_importance(forest: &Forest, data: &Dataset) -> Vec<f64> {
    feature_importance_flat(&forest.flatten(), data)
}

/// [`feature_importance`] over an already-compiled [`FlatForest`].
pub fn feature_importance_flat(flat: &FlatForest, data: &Dataset) -> Vec<f64> {
    let arity = flat.arity.max(data.arity());
    let mut importances = vec![0.0; arity];
    let total = data.len() as f64;

    // Route every example through every tree, counting (pos, neg) arrivals
    // per arena row. Row ids are unique across trees, so one pair of dense
    // vectors covers the whole forest.
    let mut pos = vec![0.0f64; flat.n_nodes()];
    let mut neg = vec![0.0f64; flat.n_nodes()];
    for &root in &flat.roots {
        for (fv, &label) in data.features.iter().zip(&data.labels) {
            let mut i = root as usize;
            loop {
                if label {
                    pos[i] += 1.0;
                } else {
                    neg[i] += 1.0;
                }
                let f = flat.feature[i];
                if f == FLAT_LEAF {
                    break;
                }
                let v = fv.get(f as usize).copied().unwrap_or(f64::NAN);
                i = if v > flat.threshold[i] {
                    flat.right[i] as usize
                } else {
                    flat.left[i] as usize
                };
            }
        }
    }

    // Ascending arena order = preorder per tree, trees in forest order.
    for i in 0..flat.n_nodes() {
        let f = flat.feature[i];
        if f == FLAT_LEAF {
            continue;
        }
        let (l, r) = (flat.left[i] as usize, flat.right[i] as usize);
        let here = pos[i] + neg[i];
        if here > 0.0 && total > 0.0 {
            let decrease = gini(pos[i], neg[i])
                - (pos[l] + neg[l]) / here * gini(pos[l], neg[l])
                - (pos[r] + neg[r]) / here * gini(pos[r], neg[r]);
            importances[f as usize] += here / total * decrease.max(0.0);
        }
    }
    let sum: f64 = importances.iter().sum();
    if sum > 0.0 {
        for v in &mut importances {
            *v /= sum;
        }
    }
    importances
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ForestConfig;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Feature 0 decides the label; features 1-2 are noise.
    fn fixture() -> (Forest, Dataset) {
        let mut rng = SmallRng::seed_from_u64(17);
        let mut data = Dataset::new();
        for _ in 0..400 {
            let signal: f64 = rng.gen();
            let noise1: f64 = rng.gen();
            let noise2: f64 = rng.gen();
            data.push(vec![signal, noise1, noise2], signal > 0.5);
        }
        let forest = Forest::train(&data, &ForestConfig::default(), &mut rng);
        (forest, data)
    }

    #[test]
    fn signal_feature_dominates() {
        let (forest, data) = fixture();
        let imp = feature_importance(&forest, &data);
        assert_eq!(imp.len(), 3);
        assert!(imp[0] > 0.6, "{imp:?}");
        assert!(imp[0] > imp[1] && imp[0] > imp[2], "{imp:?}");
    }

    #[test]
    fn importances_normalized() {
        let (forest, data) = fixture();
        let imp = feature_importance(&forest, &data);
        let sum: f64 = imp.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "{sum}");
        assert!(imp.iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn pure_forest_zero_importance() {
        let mut data = Dataset::new();
        for i in 0..10 {
            data.push(vec![i as f64], true);
        }
        let forest = Forest::train(
            &data,
            &ForestConfig::default(),
            &mut SmallRng::seed_from_u64(1),
        );
        let imp = feature_importance(&forest, &data);
        assert!(imp.iter().all(|v| *v == 0.0), "{imp:?}");
    }

    #[test]
    fn flat_variant_matches_node_variant() {
        let (forest, data) = fixture();
        let via_forest = feature_importance(&forest, &data);
        let via_flat = feature_importance_flat(&forest.flatten(), &data);
        assert_eq!(via_forest, via_flat);
    }
}
