//! Feature-importance estimation: mean impurity decrease, recomputed over
//! a reference dataset. In a hands-off system nobody writes the features
//! into rules by hand, so importances are the main lens a service operator
//! has into *why* the learned blocking rules look the way they do.

use crate::tree::{Node, Tree};
use crate::{Dataset, Forest};
use std::collections::HashMap;

fn gini(pos: f64, neg: f64) -> f64 {
    let n = pos + neg;
    if n == 0.0 {
        return 0.0;
    }
    let p = pos / n;
    2.0 * p * (1.0 - p)
}

/// Per-node (pos, neg) counts of `data` routed through `tree`, keyed by a
/// node path id.
fn route_counts(tree: &Tree, data: &Dataset) -> HashMap<u64, (f64, f64)> {
    let mut counts: HashMap<u64, (f64, f64)> = HashMap::new();
    for (fv, &label) in data.features.iter().zip(&data.labels) {
        let mut node = &tree.root;
        let mut path: u64 = 1;
        loop {
            let slot = counts.entry(path).or_insert((0.0, 0.0));
            if label {
                slot.0 += 1.0;
            } else {
                slot.1 += 1.0;
            }
            match node {
                Node::Leaf { .. } => break,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    let v = fv.get(*feature).copied().unwrap_or(f64::NAN);
                    if v > *threshold {
                        node = right;
                        path = path * 2 + 1;
                    } else {
                        node = left;
                        path *= 2;
                    }
                }
            }
        }
    }
    counts
}

fn accumulate(
    node: &Node,
    path: u64,
    counts: &HashMap<u64, (f64, f64)>,
    total: f64,
    importances: &mut [f64],
) {
    if let Node::Split {
        feature,
        left,
        right,
        ..
    } = node
    {
        let (p, n) = counts.get(&path).copied().unwrap_or((0.0, 0.0));
        let (lp, ln) = counts.get(&(path * 2)).copied().unwrap_or((0.0, 0.0));
        let (rp, rn) = counts.get(&(path * 2 + 1)).copied().unwrap_or((0.0, 0.0));
        let here = p + n;
        if here > 0.0 && total > 0.0 {
            let decrease =
                gini(p, n) - (lp + ln) / here * gini(lp, ln) - (rp + rn) / here * gini(rp, rn);
            importances[*feature] += here / total * decrease.max(0.0);
        }
        accumulate(left, path * 2, counts, total, importances);
        accumulate(right, path * 2 + 1, counts, total, importances);
    }
}

/// Mean-impurity-decrease importance of every feature, evaluated by
/// routing `data` through the forest. Normalized to sum to 1 when any
/// importance is positive.
pub fn feature_importance(forest: &Forest, data: &Dataset) -> Vec<f64> {
    let arity = forest.arity.max(data.arity());
    let mut importances = vec![0.0; arity];
    let total = data.len() as f64;
    for tree in &forest.trees {
        let counts = route_counts(tree, data);
        accumulate(&tree.root, 1, &counts, total, &mut importances);
    }
    let sum: f64 = importances.iter().sum();
    if sum > 0.0 {
        for v in &mut importances {
            *v /= sum;
        }
    }
    importances
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ForestConfig;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    /// Feature 0 decides the label; features 1-2 are noise.
    fn fixture() -> (Forest, Dataset) {
        let mut rng = SmallRng::seed_from_u64(17);
        let mut data = Dataset::new();
        for _ in 0..400 {
            let signal: f64 = rng.gen();
            let noise1: f64 = rng.gen();
            let noise2: f64 = rng.gen();
            data.push(vec![signal, noise1, noise2], signal > 0.5);
        }
        let forest = Forest::train(&data, &ForestConfig::default(), &mut rng);
        (forest, data)
    }

    #[test]
    fn signal_feature_dominates() {
        let (forest, data) = fixture();
        let imp = feature_importance(&forest, &data);
        assert_eq!(imp.len(), 3);
        assert!(imp[0] > 0.6, "{imp:?}");
        assert!(imp[0] > imp[1] && imp[0] > imp[2], "{imp:?}");
    }

    #[test]
    fn importances_normalized() {
        let (forest, data) = fixture();
        let imp = feature_importance(&forest, &data);
        let sum: f64 = imp.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "{sum}");
        assert!(imp.iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn pure_forest_zero_importance() {
        let mut data = Dataset::new();
        for i in 0..10 {
            data.push(vec![i as f64], true);
        }
        let forest = Forest::train(
            &data,
            &ForestConfig::default(),
            &mut SmallRng::seed_from_u64(1),
        );
        let imp = feature_importance(&forest, &data);
        assert!(imp.iter().all(|v| *v == 0.0), "{imp:?}");
    }
}
