//! CART-style binary decision trees with Gini impurity.
//!
//! Two split-search strategies produce **bit-identical** trees for the
//! same RNG stream (property-tested in `tests/flat_equivalence.rs`):
//!
//! * [`SplitSearch::Presorted`] (the default) sorts each feature column
//!   once at the root and keeps columns sorted through splits, so every
//!   node evaluates all candidate thresholds of a feature in one linear
//!   sweep with running class counts — `O(n)` per feature per node
//!   instead of the rescan path's `O(n × distinct values)` — and scratch
//!   buffers are recycled across nodes to keep deep trees allocation-free.
//! * [`SplitSearch::Rescan`] re-collects and re-sorts the candidate values
//!   at every node and re-counts the full partition per threshold: the
//!   original, obviously-correct reference that benchmarks and property
//!   tests compare against.

use crate::Dataset;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// Training configuration for a single tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum examples required to attempt a split.
    pub min_split: usize,
    /// Number of random features considered per node; `None` means
    /// `ceil(sqrt(arity))` (the random-forest default).
    pub features_per_node: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 10,
            min_split: 2,
            features_per_node: None,
        }
    }
}

/// Split-search strategy; both strategies grow bit-identical trees.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum SplitSearch {
    /// Sorted feature columns maintained through splits, linear sweep per
    /// node (fast path, default).
    #[default]
    Presorted,
    /// Re-collect and re-sort candidate values at every node (reference).
    Rescan,
}

/// A tree node. Missing feature values (`NaN`) take the left branch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// Terminal node predicting `label`; `pos`/`neg` are training counts.
    Leaf {
        /// Predicted label.
        label: bool,
        /// Positive training examples that reached this leaf.
        pos: usize,
        /// Negative training examples that reached this leaf.
        neg: usize,
    },
    /// Internal split on `feature <= threshold` (left) vs `> threshold`
    /// (right).
    Split {
        /// Feature index.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Subtree for `value <= threshold` (and missing values).
        left: Box<Node>,
        /// Subtree for `value > threshold`.
        right: Box<Node>,
    },
}

/// A trained decision tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    /// Root node.
    pub root: Node,
    /// Feature arity the tree was trained on.
    pub arity: usize,
}

impl Tree {
    /// Train a tree on (a bootstrap view of) `data`, using the example
    /// indices in `idx`, with the default (presorted) split search.
    pub fn train_on(data: &Dataset, idx: &[usize], cfg: &TreeConfig, rng: &mut impl Rng) -> Tree {
        Self::train_on_with(data, idx, cfg, rng, SplitSearch::Presorted)
    }

    /// Train with an explicit split-search strategy. Both strategies
    /// consume the RNG identically and grow identical trees.
    pub fn train_on_with(
        data: &Dataset,
        idx: &[usize],
        cfg: &TreeConfig,
        rng: &mut impl Rng,
        search: SplitSearch,
    ) -> Tree {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let arity = data.arity();
        let k = cfg
            .features_per_node
            .unwrap_or_else(|| (arity as f64).sqrt().ceil() as usize)
            .clamp(1, arity.max(1));
        let root = match search {
            SplitSearch::Rescan => build_rescan(data, idx, cfg, k, 0, rng),
            SplitSearch::Presorted => {
                let idx32: Vec<u32> = idx.iter().map(|&i| i as u32).collect();
                let cols = (0..arity)
                    .map(|f| {
                        let mut col = idx32.clone();
                        sort_col(data, f, &mut col);
                        col
                    })
                    .collect();
                let mut scratch = Scratch::default();
                let set = NodeCols { idx: idx32, cols };
                build_presorted(data, set, cfg, k, 0, rng, &mut scratch)
            }
        };
        Tree { root, arity }
    }

    /// Train on the entire dataset.
    pub fn train(data: &Dataset, cfg: &TreeConfig, rng: &mut impl Rng) -> Tree {
        let idx: Vec<usize> = (0..data.len()).collect();
        Self::train_on(data, &idx, cfg, rng)
    }

    /// Predict the label for a feature vector.
    pub fn predict(&self, features: &[f64]) -> bool {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { label, .. } => return *label,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = features.get(*feature).copied().unwrap_or(f64::NAN);
                    // NaN fails `v > threshold`, taking the left branch.
                    node = if v > *threshold { right } else { left };
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + count(left) + count(right),
            }
        }
        count(&self.root)
    }
}

fn gini(pos: usize, neg: usize) -> f64 {
    let n = (pos + neg) as f64;
    if n == 0.0 {
        return 0.0;
    }
    let p = pos as f64 / n;
    2.0 * p * (1.0 - p)
}

fn leaf(data: &Dataset, idx: &[usize]) -> Node {
    let pos = idx.iter().filter(|&&i| data.labels[i]).count();
    let neg = idx.len() - pos;
    Node::Leaf {
        label: pos > neg,
        pos,
        neg,
    }
}

// ---------------------------------------------------------------------------
// Presorted split search
// ---------------------------------------------------------------------------

/// A node's example multiset: `idx` in original (bootstrap) order plus one
/// copy per feature sorted by that feature's value, NaN-first, ties in
/// multiset order. Splits partition every column stably, so children
/// inherit sortedness without re-sorting.
struct NodeCols {
    idx: Vec<u32>,
    cols: Vec<Vec<u32>>,
}

/// Buffers recycled across nodes of one tree: spent column vectors return
/// to `pool` instead of being dropped, and the per-feature group run
/// buffer is reused by every sweep.
#[derive(Default)]
struct Scratch {
    pool: Vec<Vec<u32>>,
    groups: Vec<(f64, usize, usize)>,
}

impl Scratch {
    fn take(&mut self) -> Vec<u32> {
        self.pool.pop().unwrap_or_default()
    }

    fn recycle(&mut self, mut buf: Vec<u32>) {
        buf.clear();
        self.pool.push(buf);
    }

    fn recycle_set(&mut self, set: NodeCols) {
        self.recycle(set.idx);
        for col in set.cols {
            self.recycle(col);
        }
    }
}

/// Stable sort of a column by feature `f`'s value, NaN first (missing
/// values route left, like prediction).
fn sort_col(data: &Dataset, f: usize, col: &mut [u32]) {
    col.sort_by(|&a, &b| {
        let va = data.features[a as usize][f];
        let vb = data.features[b as usize][f];
        match (va.is_nan(), vb.is_nan()) {
            (true, true) => Ordering::Equal,
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => va.partial_cmp(&vb).unwrap_or(Ordering::Equal),
        }
    });
}

/// One linear sweep over the sorted column of feature `f`: evaluates every
/// candidate threshold (midpoints of adjacent distinct values) with
/// running class counts. Count arithmetic matches the rescan path
/// integer-for-integer, so gains are bit-identical.
#[allow(clippy::too_many_arguments)]
fn sweep_feature(
    data: &Dataset,
    col: &[u32],
    f: usize,
    pos: usize,
    neg: usize,
    parent_gini: f64,
    groups: &mut Vec<(f64, usize, usize)>,
    best: &mut Option<(f64, usize, f64)>,
) {
    // NaN prefix: missing values sit at the front of the sorted column and
    // always count toward the left side.
    let mut i = 0;
    let (mut nan_pos, mut nan_neg) = (0usize, 0usize);
    while i < col.len() {
        let e = col[i] as usize;
        if !data.features[e][f].is_nan() {
            break;
        }
        if data.labels[e] {
            nan_pos += 1;
        } else {
            nan_neg += 1;
        }
        i += 1;
    }
    // Runs of equal value with their class counts.
    groups.clear();
    while i < col.len() {
        let v = data.features[col[i] as usize][f];
        let (mut gp, mut gn) = (0usize, 0usize);
        while i < col.len() {
            let e = col[i] as usize;
            if data.features[e][f] != v {
                break;
            }
            if data.labels[e] {
                gp += 1;
            } else {
                gn += 1;
            }
            i += 1;
        }
        groups.push((v, gp, gn));
    }
    if groups.len() < 2 {
        return;
    }
    let n = col.len() as f64;
    let (mut lp, mut ln) = (nan_pos, nan_neg);
    for g in 0..groups.len() - 1 {
        let (v0, gp, gn) = groups[g];
        lp += gp;
        ln += gn;
        let (v1, np, nn) = groups[g + 1];
        let t = (v0 + v1) / 2.0;
        // The midpoint of two adjacent floats can round up onto the upper
        // value, in which case `v1 > t` is false and v1's whole run routes
        // left — mirror the rescan path's per-threshold recount exactly.
        let (clp, cln) = if t >= v1 {
            (lp + np, ln + nn)
        } else {
            (lp, ln)
        };
        let (rp, rn) = (pos - clp, neg - cln);
        if clp + cln == 0 || rp + rn == 0 {
            continue;
        }
        let child = (clp + cln) as f64 / n * gini(clp, cln) + (rp + rn) as f64 / n * gini(rp, rn);
        let gain = parent_gini - child;
        if gain > 1e-12 && best.is_none_or(|(g_, _, _)| gain > g_) {
            *best = Some((gain, f, t));
        }
    }
}

fn build_presorted(
    data: &Dataset,
    set: NodeCols,
    cfg: &TreeConfig,
    k: usize,
    depth: usize,
    rng: &mut impl Rng,
    scratch: &mut Scratch,
) -> Node {
    let pos = set.idx.iter().filter(|&&i| data.labels[i as usize]).count();
    let neg = set.idx.len() - pos;
    if depth >= cfg.max_depth || set.idx.len() < cfg.min_split || pos == 0 || neg == 0 {
        scratch.recycle_set(set);
        return Node::Leaf {
            label: pos > neg,
            pos,
            neg,
        };
    }

    // Random feature subset for this node (same RNG consumption as the
    // rescan path: shuffle happens only once a split is attempted).
    let mut feats: Vec<usize> = (0..data.arity()).collect();
    feats.shuffle(rng);
    feats.truncate(k);

    let parent_gini = gini(pos, neg);
    let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
    let mut groups = std::mem::take(&mut scratch.groups);
    for &f in &feats {
        sweep_feature(
            data,
            &set.cols[f],
            f,
            pos,
            neg,
            parent_gini,
            &mut groups,
            &mut best,
        );
    }
    scratch.groups = groups;

    let Some((_, feature, threshold)) = best else {
        scratch.recycle_set(set);
        return Node::Leaf {
            label: pos > neg,
            pos,
            neg,
        };
    };

    // Stable-partition every column by the split predicate: children keep
    // both the multiset order of `idx` and the sortedness of each feature
    // column, so no re-sorting ever happens below the root.
    let goes_left = |e: u32| {
        let v = data.features[e as usize][feature];
        v <= threshold || v.is_nan() // missing (NaN) values route left
    };
    let mut left = NodeCols {
        idx: scratch.take(),
        cols: Vec::with_capacity(set.cols.len()),
    };
    let mut right = NodeCols {
        idx: scratch.take(),
        cols: Vec::with_capacity(set.cols.len()),
    };
    for &e in &set.idx {
        if goes_left(e) {
            left.idx.push(e);
        } else {
            right.idx.push(e);
        }
    }
    for col in &set.cols {
        let mut lcol = scratch.take();
        let mut rcol = scratch.take();
        for &e in col {
            if goes_left(e) {
                lcol.push(e);
            } else {
                rcol.push(e);
            }
        }
        left.cols.push(lcol);
        right.cols.push(rcol);
    }
    scratch.recycle_set(set);

    let left_node = build_presorted(data, left, cfg, k, depth + 1, rng, scratch);
    let right_node = build_presorted(data, right, cfg, k, depth + 1, rng, scratch);
    Node::Split {
        feature,
        threshold,
        left: Box::new(left_node),
        right: Box::new(right_node),
    }
}

// ---------------------------------------------------------------------------
// Rescan split search (reference)
// ---------------------------------------------------------------------------

fn build_rescan(
    data: &Dataset,
    idx: &[usize],
    cfg: &TreeConfig,
    k: usize,
    depth: usize,
    rng: &mut impl Rng,
) -> Node {
    let pos = idx.iter().filter(|&&i| data.labels[i]).count();
    let neg = idx.len() - pos;
    if depth >= cfg.max_depth || idx.len() < cfg.min_split || pos == 0 || neg == 0 {
        return Node::Leaf {
            label: pos > neg,
            pos,
            neg,
        };
    }

    // Random feature subset for this node.
    let mut feats: Vec<usize> = (0..data.arity()).collect();
    feats.shuffle(rng);
    feats.truncate(k);

    let parent_gini = gini(pos, neg);
    let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
    for &f in &feats {
        // Candidate thresholds: midpoints of adjacent distinct observed
        // values (missing values excluded).
        let mut vals: Vec<f64> = idx
            .iter()
            .map(|&i| data.features[i][f])
            .filter(|v| !v.is_nan())
            .collect();
        if vals.len() < 2 {
            continue;
        }
        vals.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        vals.dedup();
        for w in vals.windows(2) {
            let t = (w[0] + w[1]) / 2.0;
            let (mut lp, mut ln, mut rp, mut rn) = (0usize, 0usize, 0usize, 0usize);
            for &i in idx {
                let v = data.features[i][f];
                let right = v > t; // NaN -> left
                match (right, data.labels[i]) {
                    (false, true) => lp += 1,
                    (false, false) => ln += 1,
                    (true, true) => rp += 1,
                    (true, false) => rn += 1,
                }
            }
            if lp + ln == 0 || rp + rn == 0 {
                continue;
            }
            let n = idx.len() as f64;
            let child = (lp + ln) as f64 / n * gini(lp, ln) + (rp + rn) as f64 / n * gini(rp, rn);
            let gain = parent_gini - child;
            if gain > 1e-12 && best.is_none_or(|(g, _, _)| gain > g) {
                best = Some((gain, f, t));
            }
        }
    }

    let Some((_, feature, threshold)) = best else {
        return leaf(data, idx);
    };
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx.iter().partition(|&&i| {
        let v = data.features[i][feature];
        v <= threshold || v.is_nan() // missing (NaN) values route left
    });
    Node::Split {
        feature,
        threshold,
        left: Box::new(build_rescan(data, &left_idx, cfg, k, depth + 1, rng)),
        right: Box::new(build_rescan(data, &right_idx, cfg, k, depth + 1, rng)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    fn separable() -> Dataset {
        let mut d = Dataset::new();
        for i in 0..50 {
            let x = i as f64 / 50.0;
            d.push(vec![x, 1.0 - x], x > 0.5);
        }
        d
    }

    #[test]
    fn learns_separable_data() {
        let d = separable();
        let t = Tree::train(&d, &TreeConfig::default(), &mut rng());
        for (f, l) in d.features.iter().zip(&d.labels) {
            assert_eq!(t.predict(f), *l);
        }
    }

    #[test]
    fn pure_data_is_single_leaf() {
        let mut d = Dataset::new();
        for _ in 0..10 {
            d.push(vec![1.0], true);
        }
        let t = Tree::train(&d, &TreeConfig::default(), &mut rng());
        assert_eq!(t.size(), 1);
        assert!(t.predict(&[0.0]));
    }

    #[test]
    fn depth_limit_respected() {
        let d = separable();
        let cfg = TreeConfig {
            max_depth: 1,
            ..Default::default()
        };
        let t = Tree::train(&d, &cfg, &mut rng());
        assert!(t.size() <= 3);
    }

    #[test]
    fn missing_values_go_left() {
        // Single split on feature 0 at 0.5: left=false, right=true.
        let t = Tree {
            root: Node::Split {
                feature: 0,
                threshold: 0.5,
                left: Box::new(Node::Leaf {
                    label: false,
                    pos: 0,
                    neg: 1,
                }),
                right: Box::new(Node::Leaf {
                    label: true,
                    pos: 1,
                    neg: 0,
                }),
            },
            arity: 1,
        };
        assert!(!t.predict(&[f64::NAN]));
        assert!(!t.predict(&[0.2]));
        assert!(t.predict(&[0.9]));
    }

    #[test]
    fn handles_nan_training_values() {
        let mut d = Dataset::new();
        for i in 0..20 {
            let v = if i % 5 == 0 { f64::NAN } else { i as f64 };
            d.push(vec![v], i >= 10);
        }
        // Must not panic, and should fit the non-missing part reasonably.
        let t = Tree::train(&d, &TreeConfig::default(), &mut rng());
        assert!(t.predict(&[19.0]));
        assert!(!t.predict(&[1.0]));
    }

    #[test]
    fn gini_bounds() {
        assert_eq!(gini(0, 0), 0.0);
        assert_eq!(gini(5, 0), 0.0);
        assert!((gini(5, 5) - 0.5).abs() < 1e-12);
    }

    /// The presorted sweep and the rescan reference must grow identical
    /// trees from the same RNG stream, including with missing values and
    /// duplicated (bootstrap-style) indices.
    #[test]
    fn presorted_matches_rescan() {
        let mut d = Dataset::new();
        for i in 0..60 {
            let x = if i % 7 == 0 {
                f64::NAN
            } else {
                i as f64 / 60.0
            };
            let y = ((i * 13) % 17) as f64 / 17.0;
            let z = if i % 5 == 0 { 0.5 } else { y * x.max(0.0) };
            d.push(vec![x, y, z], (i * 3) % 60 >= 29);
        }
        let idx: Vec<usize> = (0..d.len()).map(|i| (i * 31) % d.len()).collect();
        for seed in 0..8 {
            let cfg = TreeConfig::default();
            let a = Tree::train_on_with(
                &d,
                &idx,
                &cfg,
                &mut SmallRng::seed_from_u64(seed),
                SplitSearch::Rescan,
            );
            let b = Tree::train_on_with(
                &d,
                &idx,
                &cfg,
                &mut SmallRng::seed_from_u64(seed),
                SplitSearch::Presorted,
            );
            assert_eq!(a, b, "seed {seed}");
        }
    }
}
