//! CART-style binary decision trees with Gini impurity.

use crate::Dataset;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Training configuration for a single tree.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum examples required to attempt a split.
    pub min_split: usize,
    /// Number of random features considered per node; `None` means
    /// `ceil(sqrt(arity))` (the random-forest default).
    pub features_per_node: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        Self {
            max_depth: 10,
            min_split: 2,
            features_per_node: None,
        }
    }
}

/// A tree node. Missing feature values (`NaN`) take the left branch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Node {
    /// Terminal node predicting `label`; `pos`/`neg` are training counts.
    Leaf {
        /// Predicted label.
        label: bool,
        /// Positive training examples that reached this leaf.
        pos: usize,
        /// Negative training examples that reached this leaf.
        neg: usize,
    },
    /// Internal split on `feature <= threshold` (left) vs `> threshold`
    /// (right).
    Split {
        /// Feature index.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Subtree for `value <= threshold` (and missing values).
        left: Box<Node>,
        /// Subtree for `value > threshold`.
        right: Box<Node>,
    },
}

/// A trained decision tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    /// Root node.
    pub root: Node,
    /// Feature arity the tree was trained on.
    pub arity: usize,
}

impl Tree {
    /// Train a tree on (a bootstrap view of) `data`, using the example
    /// indices in `idx`.
    pub fn train_on(data: &Dataset, idx: &[usize], cfg: &TreeConfig, rng: &mut impl Rng) -> Tree {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let arity = data.arity();
        let k = cfg
            .features_per_node
            .unwrap_or_else(|| (arity as f64).sqrt().ceil() as usize)
            .clamp(1, arity.max(1));
        let root = build(data, idx, cfg, k, 0, rng);
        Tree { root, arity }
    }

    /// Train on the entire dataset.
    pub fn train(data: &Dataset, cfg: &TreeConfig, rng: &mut impl Rng) -> Tree {
        let idx: Vec<usize> = (0..data.len()).collect();
        Self::train_on(data, &idx, cfg, rng)
    }

    /// Predict the label for a feature vector.
    pub fn predict(&self, features: &[f64]) -> bool {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf { label, .. } => return *label,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = features.get(*feature).copied().unwrap_or(f64::NAN);
                    // NaN fails `v > threshold`, taking the left branch.
                    node = if v > *threshold { right } else { left };
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn size(&self) -> usize {
        fn count(n: &Node) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Split { left, right, .. } => 1 + count(left) + count(right),
            }
        }
        count(&self.root)
    }
}

fn gini(pos: usize, neg: usize) -> f64 {
    let n = (pos + neg) as f64;
    if n == 0.0 {
        return 0.0;
    }
    let p = pos as f64 / n;
    2.0 * p * (1.0 - p)
}

fn leaf(data: &Dataset, idx: &[usize]) -> Node {
    let pos = idx.iter().filter(|&&i| data.labels[i]).count();
    let neg = idx.len() - pos;
    Node::Leaf {
        label: pos > neg,
        pos,
        neg,
    }
}

fn build(
    data: &Dataset,
    idx: &[usize],
    cfg: &TreeConfig,
    k: usize,
    depth: usize,
    rng: &mut impl Rng,
) -> Node {
    let pos = idx.iter().filter(|&&i| data.labels[i]).count();
    let neg = idx.len() - pos;
    if depth >= cfg.max_depth || idx.len() < cfg.min_split || pos == 0 || neg == 0 {
        return Node::Leaf {
            label: pos > neg,
            pos,
            neg,
        };
    }

    // Random feature subset for this node.
    let mut feats: Vec<usize> = (0..data.arity()).collect();
    feats.shuffle(rng);
    feats.truncate(k);

    let parent_gini = gini(pos, neg);
    let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
    for &f in &feats {
        // Candidate thresholds: midpoints of adjacent distinct observed
        // values (missing values excluded).
        let mut vals: Vec<f64> = idx
            .iter()
            .map(|&i| data.features[i][f])
            .filter(|v| !v.is_nan())
            .collect();
        if vals.len() < 2 {
            continue;
        }
        vals.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        vals.dedup();
        for w in vals.windows(2) {
            let t = (w[0] + w[1]) / 2.0;
            let (mut lp, mut ln, mut rp, mut rn) = (0usize, 0usize, 0usize, 0usize);
            for &i in idx {
                let v = data.features[i][f];
                let right = v > t; // NaN -> left
                match (right, data.labels[i]) {
                    (false, true) => lp += 1,
                    (false, false) => ln += 1,
                    (true, true) => rp += 1,
                    (true, false) => rn += 1,
                }
            }
            if lp + ln == 0 || rp + rn == 0 {
                continue;
            }
            let n = idx.len() as f64;
            let child = (lp + ln) as f64 / n * gini(lp, ln) + (rp + rn) as f64 / n * gini(rp, rn);
            let gain = parent_gini - child;
            if gain > 1e-12 && best.is_none_or(|(g, _, _)| gain > g) {
                best = Some((gain, f, t));
            }
        }
    }

    let Some((_, feature, threshold)) = best else {
        return leaf(data, idx);
    };
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = idx.iter().partition(|&&i| {
        let v = data.features[i][feature];
        v <= threshold || v.is_nan() // missing (NaN) values route left
    });
    Node::Split {
        feature,
        threshold,
        left: Box::new(build(data, &left_idx, cfg, k, depth + 1, rng)),
        right: Box::new(build(data, &right_idx, cfg, k, depth + 1, rng)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(7)
    }

    fn separable() -> Dataset {
        let mut d = Dataset::new();
        for i in 0..50 {
            let x = i as f64 / 50.0;
            d.push(vec![x, 1.0 - x], x > 0.5);
        }
        d
    }

    #[test]
    fn learns_separable_data() {
        let d = separable();
        let t = Tree::train(&d, &TreeConfig::default(), &mut rng());
        for (f, l) in d.features.iter().zip(&d.labels) {
            assert_eq!(t.predict(f), *l);
        }
    }

    #[test]
    fn pure_data_is_single_leaf() {
        let mut d = Dataset::new();
        for _ in 0..10 {
            d.push(vec![1.0], true);
        }
        let t = Tree::train(&d, &TreeConfig::default(), &mut rng());
        assert_eq!(t.size(), 1);
        assert!(t.predict(&[0.0]));
    }

    #[test]
    fn depth_limit_respected() {
        let d = separable();
        let cfg = TreeConfig {
            max_depth: 1,
            ..Default::default()
        };
        let t = Tree::train(&d, &cfg, &mut rng());
        assert!(t.size() <= 3);
    }

    #[test]
    fn missing_values_go_left() {
        // Single split on feature 0 at 0.5: left=false, right=true.
        let t = Tree {
            root: Node::Split {
                feature: 0,
                threshold: 0.5,
                left: Box::new(Node::Leaf {
                    label: false,
                    pos: 0,
                    neg: 1,
                }),
                right: Box::new(Node::Leaf {
                    label: true,
                    pos: 1,
                    neg: 0,
                }),
            },
            arity: 1,
        };
        assert!(!t.predict(&[f64::NAN]));
        assert!(!t.predict(&[0.2]));
        assert!(t.predict(&[0.9]));
    }

    #[test]
    fn handles_nan_training_values() {
        let mut d = Dataset::new();
        for i in 0..20 {
            let v = if i % 5 == 0 { f64::NAN } else { i as f64 };
            d.push(vec![v], i >= 10);
        }
        // Must not panic, and should fit the non-missing part reasonably.
        let t = Tree::train(&d, &TreeConfig::default(), &mut rng());
        assert!(t.predict(&[19.0]));
        assert!(!t.predict(&[1.0]));
    }

    #[test]
    fn gini_bounds() {
        assert_eq!(gini(0, 0), 0.0);
        assert_eq!(gini(5, 0), 0.0);
        assert!((gini(5, 5) - 0.5).abs() < 1e-12);
    }
}
