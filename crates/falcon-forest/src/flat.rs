//! Flattened forest representation for batch prediction.
//!
//! [`FlatForest`] compiles a trained [`Forest`] of boxed [`Node`] trees
//! into one struct-of-arrays arena: every node of every tree becomes a row
//! in parallel `feature` / `threshold` / `left` / `right` / `leaf_label`
//! vectors, laid out in preorder so a root-to-leaf walk moves forward
//! through memory. The batch kernels ([`FlatForest::predict_batch`],
//! [`FlatForest::disagreement_batch`], [`FlatForest::count_votes_into`])
//! walk all trees over a slice of feature vectors with zero per-vector
//! allocation, accumulating integer vote counts and deriving fractions
//! with exactly the same arithmetic as [`Forest::positive_fraction`] /
//! [`Forest::disagreement`] — so flat results are bit-identical to the
//! `Node`-walking path (property-tested in `tests/flat_equivalence.rs`).

use crate::forest::Forest;
use crate::tree::Node;
use serde::{Deserialize, Serialize};

/// Sentinel in [`FlatForest::feature`] marking a leaf row.
pub const FLAT_LEAF: u32 = u32::MAX;

/// A [`Forest`] compiled into struct-of-arrays node rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlatForest {
    /// Feature arity the source forest was trained on.
    pub arity: usize,
    /// Number of trees.
    pub n_trees: usize,
    /// Arena index of each tree's root, in tree order.
    pub roots: Vec<u32>,
    /// Split feature per node, or [`FLAT_LEAF`] for leaves.
    pub feature: Vec<u32>,
    /// Split threshold per node (unused for leaves).
    pub threshold: Vec<f64>,
    /// Arena index of the `<=` child (unused for leaves).
    pub left: Vec<u32>,
    /// Arena index of the `>` child (unused for leaves).
    pub right: Vec<u32>,
    /// Predicted label for leaf rows (false for split rows).
    pub leaf_label: Vec<bool>,
}

impl FlatForest {
    /// Compile a trained forest. Nodes are appended in preorder per tree,
    /// trees in forest order.
    pub fn compile(forest: &Forest) -> FlatForest {
        let mut flat = FlatForest {
            arity: forest.arity,
            n_trees: forest.trees.len(),
            roots: Vec::with_capacity(forest.trees.len()),
            feature: Vec::new(),
            threshold: Vec::new(),
            left: Vec::new(),
            right: Vec::new(),
            leaf_label: Vec::new(),
        };
        for tree in &forest.trees {
            let root = flat.push_subtree(&tree.root);
            flat.roots.push(root);
        }
        flat
    }

    fn push_row(&mut self, feature: u32, threshold: f64, label: bool) -> u32 {
        let id = self.feature.len() as u32;
        self.feature.push(feature);
        self.threshold.push(threshold);
        self.left.push(0);
        self.right.push(0);
        self.leaf_label.push(label);
        id
    }

    fn push_subtree(&mut self, node: &Node) -> u32 {
        match node {
            Node::Leaf { label, .. } => self.push_row(FLAT_LEAF, 0.0, *label),
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                let id = self.push_row(*feature as u32, *threshold, false);
                let l = self.push_subtree(left);
                let r = self.push_subtree(right);
                self.left[id as usize] = l;
                self.right[id as usize] = r;
                id
            }
        }
    }

    /// Total node rows across all trees.
    pub fn n_nodes(&self) -> usize {
        self.feature.len()
    }

    /// Walk one tree for one feature vector; returns the leaf label.
    #[inline]
    fn walk(&self, root: u32, fv: &[f64]) -> bool {
        let mut i = root as usize;
        loop {
            let f = self.feature[i];
            if f == FLAT_LEAF {
                return self.leaf_label[i];
            }
            let v = fv.get(f as usize).copied().unwrap_or(f64::NAN);
            // NaN fails `v > threshold`, taking the left branch — same
            // missing-value rule as `Tree::predict`.
            i = if v > self.threshold[i] {
                self.right[i] as usize
            } else {
                self.left[i] as usize
            };
        }
    }

    /// Accumulate positive-vote counts for `n` feature vectors into
    /// `votes` (cleared and resized here, so callers can reuse one buffer
    /// across batches). `fv(j)` yields the j-th vector; trees iterate in
    /// the outer loop so each tree's arena rows stay hot in cache.
    pub fn count_votes_into<'a, F>(&self, n: usize, fv: F, votes: &mut Vec<u32>)
    where
        F: Fn(usize) -> &'a [f64],
    {
        votes.clear();
        votes.resize(n, 0);
        for &root in &self.roots {
            for (j, vote) in votes.iter_mut().enumerate() {
                if self.walk(root, fv(j)) {
                    *vote += 1;
                }
            }
        }
    }

    /// Positive-vote fraction from a raw vote count, identical arithmetic
    /// to [`Forest::positive_fraction`].
    #[inline]
    pub fn fraction_from_votes(&self, votes: u32) -> f64 {
        votes as f64 / self.n_trees as f64
    }

    /// Majority-vote prediction from a raw vote count.
    #[inline]
    pub fn predict_from_votes(&self, votes: u32) -> bool {
        self.fraction_from_votes(votes) > 0.5
    }

    /// Disagreement score from a raw vote count, identical arithmetic to
    /// [`Forest::disagreement`].
    #[inline]
    pub fn disagreement_from_votes(&self, votes: u32) -> f64 {
        let p = self.fraction_from_votes(votes);
        0.5 - (p - 0.5).abs()
    }

    /// Positive-vote fraction for one feature vector.
    pub fn positive_fraction(&self, fv: &[f64]) -> f64 {
        let votes = self.roots.iter().filter(|&&r| self.walk(r, fv)).count();
        self.fraction_from_votes(votes as u32)
    }

    /// Majority-vote prediction for one feature vector.
    pub fn predict(&self, fv: &[f64]) -> bool {
        self.positive_fraction(fv) > 0.5
    }

    /// Disagreement score for one feature vector.
    pub fn disagreement(&self, fv: &[f64]) -> f64 {
        let p = self.positive_fraction(fv);
        0.5 - (p - 0.5).abs()
    }

    /// Majority-vote predictions for a batch of feature vectors.
    pub fn predict_batch(&self, fvs: &[Vec<f64>]) -> Vec<bool> {
        let mut votes = Vec::new();
        self.count_votes_into(fvs.len(), |j| fvs[j].as_slice(), &mut votes);
        votes.iter().map(|&v| self.predict_from_votes(v)).collect()
    }

    /// Disagreement scores for a batch of feature vectors.
    pub fn disagreement_batch(&self, fvs: &[Vec<f64>]) -> Vec<f64> {
        let mut votes = Vec::new();
        self.count_votes_into(fvs.len(), |j| fvs[j].as_slice(), &mut votes);
        votes
            .iter()
            .map(|&v| self.disagreement_from_votes(v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::forest::ForestConfig;
    use crate::tree::Tree;
    use crate::{Dataset, Forest};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn trained() -> (Dataset, Forest) {
        let mut d = Dataset::new();
        for i in 0..120 {
            let x = i as f64 / 120.0;
            let y = (i * 11 % 17) as f64 / 17.0;
            d.push(vec![x, y], x + 0.2 * y > 0.6);
        }
        let f = Forest::train(
            &d,
            &ForestConfig::default(),
            &mut SmallRng::seed_from_u64(3),
        );
        (d, f)
    }

    #[test]
    fn compile_preserves_node_count() {
        let (_, f) = trained();
        let flat = f.flatten();
        let total: usize = f.trees.iter().map(Tree::size).sum();
        assert_eq!(flat.n_nodes(), total);
        assert_eq!(flat.roots.len(), f.trees.len());
    }

    #[test]
    fn flat_matches_node_walk() {
        let (d, f) = trained();
        let flat = f.flatten();
        for fv in &d.features {
            assert_eq!(flat.predict(fv), f.predict(fv));
            assert_eq!(
                flat.positive_fraction(fv).to_bits(),
                f.positive_fraction(fv).to_bits()
            );
            assert_eq!(
                flat.disagreement(fv).to_bits(),
                f.disagreement(fv).to_bits()
            );
        }
    }

    #[test]
    fn batch_matches_single() {
        let (d, f) = trained();
        let flat = f.flatten();
        let preds = flat.predict_batch(&d.features);
        let dis = flat.disagreement_batch(&d.features);
        for (j, fv) in d.features.iter().enumerate() {
            assert_eq!(preds[j], f.predict(fv));
            assert_eq!(dis[j].to_bits(), f.disagreement(fv).to_bits());
        }
    }

    #[test]
    fn arity_mismatch_and_nan_route_left() {
        let (_, f) = trained();
        let flat = f.flatten();
        // Short vector: missing features read as NaN, same as Node path.
        assert_eq!(flat.predict(&[0.3]), f.predict(&[0.3]));
        assert_eq!(flat.predict(&[]), f.predict(&[]));
        let nan = [f64::NAN, f64::NAN];
        assert_eq!(flat.predict(&nan), f.predict(&nan));
    }
}
