//! Classifier evaluation: confusion counts, precision, recall, F1.

use serde::{Deserialize, Serialize};

/// Confusion-matrix counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl Confusion {
    /// Record one (predicted, actual) observation.
    pub fn record(&mut self, predicted: bool, actual: bool) {
        match (predicted, actual) {
            (true, true) => self.tp += 1,
            (true, false) => self.fp += 1,
            (false, false) => self.tn += 1,
            (false, true) => self.fn_ += 1,
        }
    }

    /// Record a batch of parallel (predicted, actual) observations, e.g.
    /// the output of `FlatForest::predict_batch` against known labels.
    ///
    /// # Panics
    /// Panics if the slices differ in length.
    pub fn record_batch(&mut self, predicted: &[bool], actual: &[bool]) {
        assert_eq!(predicted.len(), actual.len());
        for (p, a) in predicted.iter().zip(actual) {
            self.record(*p, *a);
        }
    }

    /// Precision `tp / (tp + fp)`; 0 when undefined.
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    /// Recall `tp / (tp + fn)`; 0 when undefined.
    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    /// F1 — harmonic mean of precision and recall; 0 when undefined.
    pub fn f1(&self) -> f64 {
        let p = self.precision();
        let r = self.recall();
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Accuracy over all observations; 0 when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }
}

/// Build a confusion matrix from parallel prediction/label slices.
pub fn confusion(predicted: &[bool], actual: &[bool]) -> Confusion {
    let mut c = Confusion::default();
    c.record_batch(predicted, actual);
    c
}

/// F1 from parallel prediction/label slices.
pub fn f1_score(predicted: &[bool], actual: &[bool]) -> f64 {
    confusion(predicted, actual).f1()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction() {
        let c = confusion(&[true, false, true], &[true, false, true]);
        assert_eq!(c.precision(), 1.0);
        assert_eq!(c.recall(), 1.0);
        assert_eq!(c.f1(), 1.0);
        assert_eq!(c.accuracy(), 1.0);
    }

    #[test]
    fn known_values() {
        // tp=2 fp=1 fn=1 tn=1.
        let c = confusion(
            &[true, true, true, false, false],
            &[true, true, false, true, false],
        );
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.recall() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.f1() - 2.0 / 3.0).abs() < 1e-12);
        assert!((c.accuracy() - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases_do_not_nan() {
        let c = Confusion::default();
        assert_eq!(c.precision(), 0.0);
        assert_eq!(c.recall(), 0.0);
        assert_eq!(c.f1(), 0.0);
        assert_eq!(c.accuracy(), 0.0);
        let all_neg = confusion(&[false, false], &[false, false]);
        assert_eq!(all_neg.f1(), 0.0);
        assert_eq!(all_neg.accuracy(), 1.0);
    }
}
