//! Random-forest learner for Falcon.
//!
//! Corleone/Falcon learn a random forest (Breiman 2001) over feature
//! vectors of tuple pairs, use vote disagreement to pick "controversial"
//! pairs for crowd labeling (active learning), and extract root→"No"-leaf
//! paths as candidate blocking rules. This crate provides exactly those
//! capabilities:
//!
//! * [`tree`] — CART-style binary decision trees with Gini impurity and
//!   per-node random feature subsampling,
//! * [`forest`] — bagged forests with majority voting, positive-vote
//!   fractions (the active-learning disagreement signal) and out-of-bag
//!   accuracy; training is parallel yet bit-identical at any thread count
//!   (one pre-drawn seed per tree),
//! * [`flat`] — forests compiled into struct-of-arrays node arenas with
//!   allocation-free batch prediction/disagreement kernels, bit-identical
//!   to the `Node`-walking path,
//! * [`paths`] — extraction of negative paths as conjunctions of threshold
//!   predicates (the raw material of blocking rules),
//! * [`eval`] — precision/recall/F1 and confusion counts.
//!
//! Feature values are `f64` with `NaN` meaning *missing*; missing values
//! always take the left (`<=`) branch so predictions are deterministic.

pub mod eval;
pub mod flat;
pub mod forest;
pub mod importance;
pub mod paths;
pub mod tree;

pub use eval::{confusion, f1_score, Confusion};
pub use flat::{FlatForest, FLAT_LEAF};
pub use forest::{default_threads, Forest, ForestConfig};
pub use importance::{feature_importance, feature_importance_flat};
pub use paths::{NegativePath, PathPredicate, SplitOp};
pub use tree::{Node, SplitSearch, Tree, TreeConfig};

/// A training set: dense feature vectors (NaN = missing) plus boolean
/// match/no-match labels.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    /// One row of feature values per example.
    pub features: Vec<Vec<f64>>,
    /// One label per example (`true` = match).
    pub labels: Vec<bool>,
}

impl Dataset {
    /// Create an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one labeled example.
    ///
    /// # Panics
    /// Panics if the arity differs from previously pushed rows.
    pub fn push(&mut self, features: Vec<f64>, label: bool) {
        if let Some(first) = self.features.first() {
            assert_eq!(first.len(), features.len(), "feature arity mismatch");
        }
        self.features.push(features);
        self.labels.push(label);
    }

    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True iff no examples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of features per example (0 when empty).
    pub fn arity(&self) -> usize {
        self.features.first().map_or(0, Vec::len)
    }

    /// Count of positive labels.
    pub fn positives(&self) -> usize {
        self.labels.iter().filter(|l| **l).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_basics() {
        let mut d = Dataset::new();
        assert!(d.is_empty());
        d.push(vec![1.0, 2.0], true);
        d.push(vec![0.0, 1.0], false);
        assert_eq!(d.len(), 2);
        assert_eq!(d.arity(), 2);
        assert_eq!(d.positives(), 1);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_enforced() {
        let mut d = Dataset::new();
        d.push(vec![1.0], true);
        d.push(vec![1.0, 2.0], false);
    }
}
