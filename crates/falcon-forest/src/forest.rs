//! Bagged random forests: majority voting, vote fractions for active
//! learning, out-of-bag accuracy.
//!
//! Training is parallel **and** deterministic: the master RNG is consumed
//! only to draw one seed per tree, up front, in tree order; each tree then
//! trains from its own `SmallRng` (bagging indices *and* per-node feature
//! shuffles), so the trained forest is a pure function of the seed stream
//! and bit-identical at any thread count. Out-of-bag votes are merged in
//! tree order after all workers join, for the same reason.

use crate::flat::FlatForest;
use crate::tree::{SplitSearch, Tree, TreeConfig};
use crate::Dataset;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Forest training configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees (Corleone uses a 10-tree forest).
    pub n_trees: usize,
    /// Per-tree configuration.
    pub tree: TreeConfig,
    /// Bootstrap-sample trees (true = classic bagging).
    pub bagging: bool,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 10,
            tree: TreeConfig::default(),
            bagging: true,
        }
    }
}

/// A trained random forest.
///
/// ```
/// use falcon_forest::{Dataset, Forest, ForestConfig};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut data = Dataset::new();
/// for i in 0..100 {
///     let x = i as f64 / 100.0;
///     data.push(vec![x], x > 0.5);
/// }
/// let forest = Forest::train(&data, &ForestConfig::default(), &mut SmallRng::seed_from_u64(1));
/// assert!(forest.predict(&[0.9]));
/// assert!(!forest.predict(&[0.1]));
/// // Vote disagreement drives active learning: boundary points score high.
/// assert!(forest.disagreement(&[0.5]) >= forest.disagreement(&[0.95]));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Forest {
    /// The component trees.
    pub trees: Vec<Tree>,
    /// Feature arity.
    pub arity: usize,
    /// Out-of-bag accuracy estimate, when bagging was used and every
    /// example was out-of-bag for at least one tree.
    pub oob_accuracy: Option<f64>,
}

/// One trained tree plus its out-of-bag `(example, vote)` predictions.
type FittedTree = (Tree, Vec<(u32, bool)>);

/// Default worker count for parallel training: one per available core.
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

impl Forest {
    /// Train a forest in parallel on all available cores, with the fast
    /// presorted split search. Output is bit-identical for the same seed
    /// at any thread count (see module docs).
    ///
    /// # Panics
    /// Panics if `data` is empty, `cfg.n_trees == 0`, or a training
    /// worker thread panics.
    pub fn train(data: &Dataset, cfg: &ForestConfig, rng: &mut impl Rng) -> Forest {
        Self::train_threads(data, cfg, rng, default_threads())
    }

    /// Train with an explicit worker count (1 = in-place sequential).
    pub fn train_threads(
        data: &Dataset,
        cfg: &ForestConfig,
        rng: &mut impl Rng,
        threads: usize,
    ) -> Forest {
        Self::train_inner(data, cfg, rng, threads, SplitSearch::Presorted)
    }

    /// Sequential reference trainer using the rescan split search — the
    /// original, obviously-correct implementation that benchmarks and
    /// property tests compare the fast path against. Produces a forest
    /// identical to [`Forest::train`] for the same seed.
    pub fn train_reference(data: &Dataset, cfg: &ForestConfig, rng: &mut impl Rng) -> Forest {
        Self::train_inner(data, cfg, rng, 1, SplitSearch::Rescan)
    }

    fn train_inner(
        data: &Dataset,
        cfg: &ForestConfig,
        rng: &mut impl Rng,
        threads: usize,
        search: SplitSearch,
    ) -> Forest {
        assert!(!data.is_empty(), "cannot train forest on empty dataset");
        assert!(cfg.n_trees > 0, "need at least one tree");
        let n = data.len();

        // One seed per tree, drawn up front in tree order: the only master
        // RNG consumption, so the result cannot depend on scheduling.
        let seeds: Vec<u64> = (0..cfg.n_trees).map(|_| rng.next_u64()).collect();

        // Train one tree from its seed; returns the tree plus its
        // out-of-bag predictions as (example, vote) pairs.
        let fit_one = |seed: u64| -> FittedTree {
            let mut trng = SmallRng::seed_from_u64(seed);
            let idx: Vec<usize> = if cfg.bagging {
                (0..n).map(|_| trng.gen_range(0..n)).collect()
            } else {
                (0..n).collect()
            };
            let tree = Tree::train_on_with(data, &idx, &cfg.tree, &mut trng, search);
            let mut oob = Vec::new();
            if cfg.bagging {
                let mut in_bag = vec![false; n];
                for &i in &idx {
                    in_bag[i] = true;
                }
                for (i, _) in in_bag.iter().enumerate().filter(|(_, b)| !**b) {
                    oob.push((i as u32, tree.predict(&data.features[i])));
                }
            }
            (tree, oob)
        };

        let workers = threads.clamp(1, cfg.n_trees);
        let fitted: Vec<FittedTree> = if workers == 1 {
            seeds.iter().map(|&s| fit_one(s)).collect()
        } else {
            // Work-stealing over per-tree slots; slot order (not completion
            // order) determines merge order below.
            let slots: Vec<parking_lot::Mutex<Option<FittedTree>>> = seeds
                .iter()
                .map(|_| parking_lot::Mutex::new(None))
                .collect();
            let next = AtomicUsize::new(0);
            let scope_ok = crossbeam::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|_| loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&seed) = seeds.get(t) else { break };
                        *slots[t].lock() = Some(fit_one(seed));
                    });
                }
            });
            assert!(scope_ok.is_ok(), "forest training worker panicked");
            slots
                .into_iter()
                .map(|slot| slot.into_inner().expect("all tree slots filled"))
                .collect()
        };

        // Merge OOB votes deterministically in tree order.
        // oob_votes[i] = (positive votes, total votes)
        let mut oob_votes = vec![(0usize, 0usize); n];
        let mut trees = Vec::with_capacity(cfg.n_trees);
        for (tree, oob) in fitted {
            for (i, vote) in oob {
                oob_votes[i as usize].1 += 1;
                if vote {
                    oob_votes[i as usize].0 += 1;
                }
            }
            trees.push(tree);
        }
        let oob_accuracy = if cfg.bagging {
            let scored: Vec<(usize, bool)> = oob_votes
                .iter()
                .enumerate()
                .filter(|(_, (_, total))| *total > 0)
                .map(|(i, (pos, total))| (i, *pos * 2 > *total))
                .collect();
            if scored.is_empty() {
                None
            } else {
                let correct = scored
                    .iter()
                    .filter(|(i, pred)| *pred == data.labels[*i])
                    .count();
                Some(correct as f64 / scored.len() as f64)
            }
        } else {
            None
        };
        Forest {
            trees,
            arity: data.arity(),
            oob_accuracy,
        }
    }

    /// Compile into the flat SoA representation for batch prediction.
    pub fn flatten(&self) -> FlatForest {
        FlatForest::compile(self)
    }

    /// Fraction of trees voting "match" for this feature vector, in
    /// `[0, 1]`.
    pub fn positive_fraction(&self, features: &[f64]) -> f64 {
        let pos = self.trees.iter().filter(|t| t.predict(features)).count();
        pos as f64 / self.trees.len() as f64
    }

    /// Majority-vote prediction.
    pub fn predict(&self, features: &[f64]) -> bool {
        self.positive_fraction(features) > 0.5
    }

    /// Active-learning disagreement: distance of the positive-vote fraction
    /// from a unanimous vote, in `[0, 0.5]`. Pairs with the **highest**
    /// disagreement are the "most controversial" pairs Corleone sends to
    /// the crowd.
    pub fn disagreement(&self, features: &[f64]) -> f64 {
        let p = self.positive_fraction(features);
        0.5 - (p - 0.5).abs()
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True iff the forest has no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(99)
    }

    fn noisy_separable(n: usize) -> Dataset {
        let mut d = Dataset::new();
        for i in 0..n {
            let x = i as f64 / n as f64;
            let y = (i * 7 % 13) as f64 / 13.0;
            d.push(vec![x, y], x + 0.1 * y > 0.55);
        }
        d
    }

    #[test]
    fn forest_learns() {
        let d = noisy_separable(200);
        let f = Forest::train(&d, &ForestConfig::default(), &mut rng());
        let correct = d
            .features
            .iter()
            .zip(&d.labels)
            .filter(|(x, l)| f.predict(x) == **l)
            .count();
        assert!(correct as f64 / d.len() as f64 > 0.95, "{correct}/200");
    }

    #[test]
    fn oob_accuracy_reported() {
        let d = noisy_separable(200);
        let f = Forest::train(&d, &ForestConfig::default(), &mut rng());
        let oob = f.oob_accuracy.expect("bagging produces OOB");
        assert!(oob > 0.8, "{oob}");
    }

    #[test]
    fn disagreement_range_and_extremes() {
        let d = noisy_separable(100);
        let f = Forest::train(&d, &ForestConfig::default(), &mut rng());
        for x in &d.features {
            let dis = f.disagreement(x);
            assert!((0.0..=0.5).contains(&dis));
        }
        // A clearly-positive point should have near-zero disagreement.
        assert!(f.disagreement(&[1.0, 1.0]) < 0.2);
    }

    #[test]
    fn no_bagging_trains_identical_data() {
        let d = noisy_separable(100);
        let cfg = ForestConfig {
            bagging: false,
            n_trees: 3,
            ..Default::default()
        };
        let f = Forest::train(&d, &cfg, &mut rng());
        assert_eq!(f.len(), 3);
        assert!(f.oob_accuracy.is_none());
    }

    #[test]
    fn single_class_data_predicts_that_class() {
        let mut d = Dataset::new();
        for i in 0..10 {
            d.push(vec![i as f64], true);
        }
        let f = Forest::train(&d, &ForestConfig::default(), &mut rng());
        assert!(f.predict(&[3.0]));
        assert_eq!(f.positive_fraction(&[3.0]), 1.0);
    }

    #[test]
    fn reference_trainer_matches_fast_path() {
        let d = noisy_separable(80);
        let cfg = ForestConfig::default();
        let fast = Forest::train_threads(&d, &cfg, &mut SmallRng::seed_from_u64(5), 4);
        let reference = Forest::train_reference(&d, &cfg, &mut SmallRng::seed_from_u64(5));
        assert_eq!(fast, reference);
    }
}
