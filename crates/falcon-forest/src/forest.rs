//! Bagged random forests: majority voting, vote fractions for active
//! learning, out-of-bag accuracy.

use crate::tree::{Tree, TreeConfig};
use crate::Dataset;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Forest training configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForestConfig {
    /// Number of trees (Corleone uses a 10-tree forest).
    pub n_trees: usize,
    /// Per-tree configuration.
    pub tree: TreeConfig,
    /// Bootstrap-sample trees (true = classic bagging).
    pub bagging: bool,
}

impl Default for ForestConfig {
    fn default() -> Self {
        Self {
            n_trees: 10,
            tree: TreeConfig::default(),
            bagging: true,
        }
    }
}

/// A trained random forest.
///
/// ```
/// use falcon_forest::{Dataset, Forest, ForestConfig};
/// use rand::{rngs::SmallRng, SeedableRng};
///
/// let mut data = Dataset::new();
/// for i in 0..100 {
///     let x = i as f64 / 100.0;
///     data.push(vec![x], x > 0.5);
/// }
/// let forest = Forest::train(&data, &ForestConfig::default(), &mut SmallRng::seed_from_u64(1));
/// assert!(forest.predict(&[0.9]));
/// assert!(!forest.predict(&[0.1]));
/// // Vote disagreement drives active learning: boundary points score high.
/// assert!(forest.disagreement(&[0.5]) >= forest.disagreement(&[0.95]));
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Forest {
    /// The component trees.
    pub trees: Vec<Tree>,
    /// Feature arity.
    pub arity: usize,
    /// Out-of-bag accuracy estimate, when bagging was used and every
    /// example was out-of-bag for at least one tree.
    pub oob_accuracy: Option<f64>,
}

impl Forest {
    /// Train a forest.
    ///
    /// # Panics
    /// Panics if `data` is empty or `cfg.n_trees == 0`.
    pub fn train(data: &Dataset, cfg: &ForestConfig, rng: &mut impl Rng) -> Forest {
        assert!(!data.is_empty(), "cannot train forest on empty dataset");
        assert!(cfg.n_trees > 0, "need at least one tree");
        let n = data.len();
        let mut trees = Vec::with_capacity(cfg.n_trees);
        // votes[i] = (oob positive votes, oob total votes)
        let mut oob_votes = vec![(0usize, 0usize); n];
        for _ in 0..cfg.n_trees {
            let idx: Vec<usize> = if cfg.bagging {
                (0..n).map(|_| rng.gen_range(0..n)).collect()
            } else {
                (0..n).collect()
            };
            let tree = Tree::train_on(data, &idx, &cfg.tree, rng);
            if cfg.bagging {
                let mut in_bag = vec![false; n];
                for &i in &idx {
                    in_bag[i] = true;
                }
                for i in 0..n {
                    if !in_bag[i] {
                        let p = tree.predict(&data.features[i]);
                        oob_votes[i].1 += 1;
                        if p {
                            oob_votes[i].0 += 1;
                        }
                    }
                }
            }
            trees.push(tree);
        }
        let oob_accuracy = if cfg.bagging {
            let scored: Vec<(usize, bool)> = oob_votes
                .iter()
                .enumerate()
                .filter(|(_, (_, total))| *total > 0)
                .map(|(i, (pos, total))| (i, *pos * 2 > *total))
                .collect();
            if scored.is_empty() {
                None
            } else {
                let correct = scored
                    .iter()
                    .filter(|(i, pred)| *pred == data.labels[*i])
                    .count();
                Some(correct as f64 / scored.len() as f64)
            }
        } else {
            None
        };
        Forest {
            trees,
            arity: data.arity(),
            oob_accuracy,
        }
    }

    /// Fraction of trees voting "match" for this feature vector, in
    /// `[0, 1]`.
    pub fn positive_fraction(&self, features: &[f64]) -> f64 {
        let pos = self.trees.iter().filter(|t| t.predict(features)).count();
        pos as f64 / self.trees.len() as f64
    }

    /// Majority-vote prediction.
    pub fn predict(&self, features: &[f64]) -> bool {
        self.positive_fraction(features) > 0.5
    }

    /// Active-learning disagreement: distance of the positive-vote fraction
    /// from a unanimous vote, in `[0, 0.5]`. Pairs with the **highest**
    /// disagreement are the "most controversial" pairs Corleone sends to
    /// the crowd.
    pub fn disagreement(&self, features: &[f64]) -> f64 {
        let p = self.positive_fraction(features);
        0.5 - (p - 0.5).abs()
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True iff the forest has no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(99)
    }

    fn noisy_separable(n: usize) -> Dataset {
        let mut d = Dataset::new();
        for i in 0..n {
            let x = i as f64 / n as f64;
            let y = (i * 7 % 13) as f64 / 13.0;
            d.push(vec![x, y], x + 0.1 * y > 0.55);
        }
        d
    }

    #[test]
    fn forest_learns() {
        let d = noisy_separable(200);
        let f = Forest::train(&d, &ForestConfig::default(), &mut rng());
        let correct = d
            .features
            .iter()
            .zip(&d.labels)
            .filter(|(x, l)| f.predict(x) == **l)
            .count();
        assert!(correct as f64 / d.len() as f64 > 0.95, "{correct}/200");
    }

    #[test]
    fn oob_accuracy_reported() {
        let d = noisy_separable(200);
        let f = Forest::train(&d, &ForestConfig::default(), &mut rng());
        let oob = f.oob_accuracy.expect("bagging produces OOB");
        assert!(oob > 0.8, "{oob}");
    }

    #[test]
    fn disagreement_range_and_extremes() {
        let d = noisy_separable(100);
        let f = Forest::train(&d, &ForestConfig::default(), &mut rng());
        for x in &d.features {
            let dis = f.disagreement(x);
            assert!((0.0..=0.5).contains(&dis));
        }
        // A clearly-positive point should have near-zero disagreement.
        assert!(f.disagreement(&[1.0, 1.0]) < 0.2);
    }

    #[test]
    fn no_bagging_trains_identical_data() {
        let d = noisy_separable(100);
        let cfg = ForestConfig {
            bagging: false,
            n_trees: 3,
            ..Default::default()
        };
        let f = Forest::train(&d, &cfg, &mut rng());
        assert_eq!(f.len(), 3);
        assert!(f.oob_accuracy.is_none());
    }

    #[test]
    fn single_class_data_predicts_that_class() {
        let mut d = Dataset::new();
        for i in 0..10 {
            d.push(vec![i as f64], true);
        }
        let f = Forest::train(&d, &ForestConfig::default(), &mut rng());
        assert!(f.predict(&[3.0]));
        assert_eq!(f.positive_fraction(&[3.0]), 1.0);
    }
}
