//! Extraction of negative tree paths as candidate blocking rules.
//!
//! Section 3.2 / Figure 2 of the paper: every root→"No"-leaf branch of a
//! decision tree is a conjunction of threshold predicates that, when
//! satisfied, predicts *no match* — i.e. a candidate blocking rule
//! `p_1 ∧ ... ∧ p_m → drop (a, b)`.

use crate::tree::{Node, Tree};
use crate::Forest;
use serde::{Deserialize, Serialize};

/// Comparison operator on a feature threshold along a tree path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SplitOp {
    /// Feature value `<=` threshold (left branch).
    Le,
    /// Feature value `>` threshold (right branch).
    Gt,
}

impl SplitOp {
    /// Evaluate `value op threshold`; missing (`NaN`) values satisfy `Le`
    /// (consistent with trees routing missing values left).
    pub fn eval(self, value: f64, threshold: f64) -> bool {
        match self {
            SplitOp::Le => value <= threshold || value.is_nan(),
            SplitOp::Gt => value > threshold, // NaN -> false
        }
    }

    /// The complementary operator.
    pub fn complement(self) -> SplitOp {
        match self {
            SplitOp::Le => SplitOp::Gt,
            SplitOp::Gt => SplitOp::Le,
        }
    }
}

/// One predicate along a negative path: `feature op threshold`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PathPredicate {
    /// Feature index into the feature vector.
    pub feature: usize,
    /// Comparison operator.
    pub op: SplitOp,
    /// Threshold value.
    pub threshold: f64,
}

impl PathPredicate {
    /// Evaluate against a feature vector.
    pub fn eval(&self, features: &[f64]) -> bool {
        let v = features.get(self.feature).copied().unwrap_or(f64::NAN);
        self.op.eval(v, self.threshold)
    }
}

/// A root→No-leaf path: a conjunction of predicates plus the number of
/// negative training examples the leaf covered (used to rank candidate
/// rules before crowd evaluation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NegativePath {
    /// Conjunction of threshold predicates.
    pub predicates: Vec<PathPredicate>,
    /// Negative training examples at the leaf.
    pub leaf_neg: usize,
    /// Positive training examples at the leaf (impurity signal).
    pub leaf_pos: usize,
}

impl NegativePath {
    /// True iff every predicate holds, i.e. the path would *drop* the pair.
    pub fn fires(&self, features: &[f64]) -> bool {
        self.predicates.iter().all(|p| p.eval(features))
    }
}

/// Extract all negative paths from one tree.
pub fn extract_tree_paths(tree: &Tree) -> Vec<NegativePath> {
    let mut out = Vec::new();
    let mut stack = Vec::new();
    walk(&tree.root, &mut stack, &mut out);
    out
}

/// Extract all negative paths from every tree in a forest.
pub fn extract_forest_paths(forest: &Forest) -> Vec<NegativePath> {
    forest.trees.iter().flat_map(extract_tree_paths).collect()
}

fn walk(node: &Node, stack: &mut Vec<PathPredicate>, out: &mut Vec<NegativePath>) {
    match node {
        Node::Leaf { label, pos, neg } => {
            if !*label && !stack.is_empty() {
                out.push(NegativePath {
                    predicates: stack.clone(),
                    leaf_neg: *neg,
                    leaf_pos: *pos,
                });
            }
        }
        Node::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            stack.push(PathPredicate {
                feature: *feature,
                op: SplitOp::Le,
                threshold: *threshold,
            });
            walk(left, stack, out);
            stack.pop();
            stack.push(PathPredicate {
                feature: *feature,
                op: SplitOp::Gt,
                threshold: *threshold,
            });
            walk(right, stack, out);
            stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::Node;

    /// The Figure 2.a tree: isbn_match (feature 0) then #pages match
    /// (feature 1); "No" leaves at (isbn <= 0.5) and (isbn > 0.5, pages <=
    /// 0.5).
    fn figure2_tree() -> Tree {
        Tree {
            root: Node::Split {
                feature: 0,
                threshold: 0.5,
                left: Box::new(Node::Leaf {
                    label: false,
                    pos: 0,
                    neg: 80,
                }),
                right: Box::new(Node::Split {
                    feature: 1,
                    threshold: 0.5,
                    left: Box::new(Node::Leaf {
                        label: false,
                        pos: 1,
                        neg: 9,
                    }),
                    right: Box::new(Node::Leaf {
                        label: true,
                        pos: 10,
                        neg: 0,
                    }),
                }),
            },
            arity: 2,
        }
    }

    #[test]
    fn extracts_both_no_paths() {
        let paths = extract_tree_paths(&figure2_tree());
        assert_eq!(paths.len(), 2);
        // Rule 1: isbn_match <= 0.5 -> No.
        assert_eq!(paths[0].predicates.len(), 1);
        assert_eq!(paths[0].predicates[0].feature, 0);
        assert_eq!(paths[0].predicates[0].op, SplitOp::Le);
        assert_eq!(paths[0].leaf_neg, 80);
        // Rule 2: isbn_match > 0.5 AND pages <= 0.5 -> No.
        assert_eq!(paths[1].predicates.len(), 2);
        assert_eq!(paths[1].predicates[0].op, SplitOp::Gt);
        assert_eq!(paths[1].predicates[1].op, SplitOp::Le);
    }

    #[test]
    fn fires_matches_tree_negative_prediction() {
        let tree = figure2_tree();
        let paths = extract_tree_paths(&tree);
        for fv in [
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![f64::NAN, 1.0],
        ] {
            let tree_no = !tree.predict(&fv);
            let any_fires = paths.iter().any(|p| p.fires(&fv));
            assert_eq!(tree_no, any_fires, "fv={fv:?}");
        }
    }

    #[test]
    fn all_positive_tree_has_no_paths() {
        let tree = Tree {
            root: Node::Leaf {
                label: true,
                pos: 5,
                neg: 0,
            },
            arity: 1,
        };
        assert!(extract_tree_paths(&tree).is_empty());
    }

    #[test]
    fn split_op_nan_semantics() {
        assert!(SplitOp::Le.eval(f64::NAN, 0.5));
        assert!(!SplitOp::Gt.eval(f64::NAN, 0.5));
        assert_eq!(SplitOp::Le.complement(), SplitOp::Gt);
    }
}
