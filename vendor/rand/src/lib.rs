//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the small slice of the `rand 0.8` API it
//! actually uses: [`Rng`], [`SeedableRng`], [`rngs::SmallRng`] and
//! [`seq::SliceRandom`]. The generator is xoshiro256++ seeded through
//! splitmix64 — deterministic for a given seed, which is exactly what the
//! simulated-cluster experiments require (`falcon-lint` separately bans
//! the nondeterministic entry points such as `thread_rng`, which this stub
//! deliberately does not provide).
//!
//! Numeric streams differ from upstream `rand`; everything in this
//! workspace that depends on randomness is seeded and asserts on
//! *properties*, not on specific draws.

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from their full domain
/// (the `Standard` distribution of upstream `rand`).
pub trait StandardSample: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Element types `gen_range` can sample uniformly (the `SampleUniform`
/// of upstream `rand`).
pub trait SampleUniform: Sized {
    /// Draw from `[lo, hi)`.
    fn sample_exclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Ranges a value can be drawn from uniformly (the `SampleRange` of
/// upstream `rand`). Generic over the element type so integer/float
/// literals in `gen_range(0..26)` infer from surrounding context.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! int_sample_uniform {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )+};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "empty gen_range");
                let unit = <$t as StandardSample>::sample(rng);
                lo + unit * (hi - lo)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "empty gen_range");
                let unit = <$t as StandardSample>::sample(rng);
                lo + unit * (hi - lo)
            }
        }
    )+};
}

float_sample_uniform!(f32, f64);

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`] (including `&mut R`).
pub trait Rng: RngCore {
    /// Sample a value from the type's full domain.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed material.
    type Seed: Default + AsMut<[u8]>;

    /// Construct from raw seed material.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a single `u64` (expanded through splitmix64).
    fn seed_from_u64(state: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        fn from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro256++ must not start from the all-zero state.
            if s == [0; 4] {
                s = [0x9e37_79b9_7f4a_7c15, 1, 2, 3];
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut folded = 0u64;
            for (i, b) in seed.iter().enumerate() {
                folded ^= u64::from(*b) << ((i % 8) * 8);
            }
            Self::from_u64(folded)
        }

        fn seed_from_u64(state: u64) -> Self {
            Self::from_u64(state)
        }
    }
}

pub use rngs::SmallRng;

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick a reference to one element, `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (*rng).gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (*rng).gen_range(0..self.len());
                self.get(i)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&x));
            let y: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&y));
            let z: usize = rng.gen_range(3..=3);
            assert_eq!(z, 3);
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        assert!(Vec::<u32>::new().choose(&mut rng).is_none());
    }
}
