//! Offline vendored minimal benchmark harness.
//!
//! Implements the subset of the `criterion` API the workspace's benches
//! use (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups, `BenchmarkId`, `black_box`, `Bencher::iter`).
//! Timing here intentionally uses wall-clock `Instant` — benches measure
//! real hardware; simulated cluster time is a separate concern.
//!
//! Methodology is deliberately simple: a short warm-up, then a fixed
//! number of timed samples; median and min/max are printed per benchmark.
//! There is no statistical regression analysis.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Runs one benchmark body repeatedly.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Time `f`, calling it once per sample after a warm-up.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (untimed).
        for _ in 0..2 {
            black_box(f());
        }
        for _ in 0..self.sample_count {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn run_one(label: &str, sample_count: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_count,
    };
    f(&mut b);
    b.samples.sort_unstable();
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let median = b.samples[b.samples.len() / 2];
    let lo = b.samples[0];
    let hi = b.samples[b.samples.len() - 1];
    println!("{label:<48} median {median:>12.3?}   [{lo:.3?} .. {hi:.3?}]");
}

/// Identifies one parameterized benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{parameter}", function_name.into()),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmark a closure under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.sample_size, &mut f);
        self
    }

    /// Benchmark a closure that receives a borrowed input.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &format!("{}/{}", self.name, id.id),
            self.sample_size,
            &mut |b| {
                f(b, input);
            },
        );
        self
    }

    /// Finish the group (printing is immediate; this is a no-op kept for
    /// API compatibility).
    pub fn finish(&mut self) {
        let _ = &self.criterion;
    }
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Benchmark a standalone closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, 10, &mut f);
        self
    }

    /// Open a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: 10,
        }
    }
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
