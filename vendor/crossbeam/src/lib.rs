//! Offline vendored stand-in for the slice of `crossbeam` this workspace
//! uses: `crossbeam::thread::scope`, implemented over `std::thread::scope`
//! (stable since Rust 1.63, which postdates the original crossbeam API).

/// Scoped threads with crossbeam's `Result`-returning panic contract.
pub mod thread {
    use std::any::Any;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A scope handle; spawned closures receive a reference to it so they
    /// can spawn further scoped threads.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Wait for the thread and return its result (`Err` on panic).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread; the closure receives this scope.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Run `f` with a scope in which threads borrowing the environment can
    /// be spawned. Unlike `std::thread::scope`, a panic on any spawned
    /// thread (or in `f` itself) is returned as `Err` instead of
    /// propagating.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_all() {
        let counter = AtomicUsize::new(0);
        let counter = &counter;
        let sum = crate::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    s.spawn(move |_| {
                        counter.fetch_add(1, Ordering::SeqCst);
                        i
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or(0))
                .sum::<usize>()
        });
        assert_eq!(sum.ok(), Some(6));
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn panics_become_err() {
        let r = crate::thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}
