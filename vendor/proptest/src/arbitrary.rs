//! `any::<T>()` — full-domain strategies for primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )+};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, sign-symmetric, wide-ranged: good enough for property
        // tests that just need "some f64".
        let mag = rng.gen::<f64>() * 1e9;
        if rng.gen() {
            mag
        } else {
            -mag
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}
