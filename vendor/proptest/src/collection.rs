//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// An inclusive length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        Self {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        Self {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates `Vec`s whose elements come from `element` and whose length
/// lies in `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.size.lo..=self.size.hi);
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Strategy for `Vec`s of `element` with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
