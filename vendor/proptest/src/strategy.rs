//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::rc::Rc;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrink tree: `new_value` draws one
/// value directly from the RNG.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draw one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keep only values satisfying `keep`; gives up (panics) if the
    /// predicate rejects too many consecutive draws.
    fn prop_filter<F>(self, reason: impl Into<String>, keep: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            keep,
        }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    keep: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.new_value(rng);
            if (self.keep)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter({:?}) rejected 1000 consecutive generated values",
            self.reason
        );
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Weighted choice between strategies (built by `prop_oneof!`).
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> OneOf<T> {
    /// Build from `(weight, strategy)` arms.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| *w).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        Self { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.gen_range(0..self.total);
        for (w, s) in &self.arms {
            if pick < *w {
                return s.new_value(rng);
            }
            pick -= *w;
        }
        // Unreachable: pick < total and the weights sum to total.
        self.arms[0].1.new_value(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )+};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Regex-subset string strategy: `"[a-z0-9]{1,5}"` and friends.
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+);)+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
    (A 0, B 1, C 2, D 3, E 4);
}
