//! Runner configuration and per-test deterministic RNG.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// The RNG handed to strategies (a deterministic xoshiro256++).
pub type TestRng = rand::rngs::SmallRng;

/// Runner configuration (the `ProptestConfig` of real proptest, reduced
/// to the single knob this workspace uses).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic RNG derived from the test's name: failures reproduce
/// without recording a seed.
pub fn rng_for_test(name: &str) -> TestRng {
    use rand::SeedableRng;
    let mut h = DefaultHasher::new();
    name.hash(&mut h);
    TestRng::seed_from_u64(h.finish() ^ 0x70726f_70746573)
}
