//! Regex-subset string generation.
//!
//! Supports the pattern forms the workspace's tests use: literal
//! characters, character classes `[a-z0-9 ,\"']` (with ranges), and the
//! quantifiers `{n}`, `{m,n}`, `?`, `*`, `+` (the unbounded ones capped
//! at 8 repetitions). Anything else panics so a test author notices
//! immediately instead of silently getting wrong data.

use crate::test_runner::TestRng;
use rand::Rng;

enum Atom {
    Literal(char),
    Class(Vec<char>),
}

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut out = Vec::new();
    let mut prev: Option<char> = None;
    loop {
        let c = chars
            .next()
            .unwrap_or_else(|| panic!("unterminated character class"));
        match c {
            ']' => break,
            '\\' => {
                let esc = chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in class"));
                out.push(esc);
                prev = Some(esc);
            }
            '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                let lo = prev.take().unwrap_or('-');
                let hi = chars.next().unwrap_or('-');
                assert!(lo <= hi, "bad class range {lo}-{hi}");
                // `lo` is already in `out`; add the rest of the range.
                for v in (lo as u32 + 1)..=(hi as u32) {
                    if let Some(ch) = char::from_u32(v) {
                        out.push(ch);
                    }
                }
            }
            other => {
                out.push(other);
                prev = Some(other);
            }
        }
    }
    assert!(!out.is_empty(), "empty character class");
    out
}

fn parse_quant(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    match chars.peek() {
        Some('{') => {
            chars.next();
            let mut body = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                body.push(c);
            }
            let parse = |s: &str| {
                s.trim()
                    .parse::<usize>()
                    .unwrap_or_else(|_| panic!("bad quantifier {body:?}"))
            };
            match body.split_once(',') {
                Some((lo, hi)) => (parse(lo), parse(hi)),
                None => {
                    let n = parse(&body);
                    (n, n)
                }
            }
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('*') => {
            chars.next();
            (0, 8)
        }
        Some('+') => {
            chars.next();
            (1, 8)
        }
        _ => (1, 1),
    }
}

fn parse(pattern: &str) -> Vec<(Atom, usize, usize)> {
    let mut chars = pattern.chars().peekable();
    let mut atoms = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => Atom::Class(parse_class(&mut chars)),
            '\\' => Atom::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in pattern {pattern:?}")),
            ),
            '(' | ')' | '|' | '^' | '$' | '.' => {
                panic!("unsupported regex construct {c:?} in pattern {pattern:?}")
            }
            other => Atom::Literal(other),
        };
        let (lo, hi) = parse_quant(&mut chars);
        atoms.push((atom, lo, hi));
    }
    atoms
}

/// Generate one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for (atom, lo, hi) in parse(pattern) {
        let n = rng.gen_range(lo..=hi);
        for _ in 0..n {
            match &atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(set) => out.push(set[rng.gen_range(0..set.len())]),
            }
        }
    }
    out
}
