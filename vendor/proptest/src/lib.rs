//! Offline vendored mini property-testing harness.
//!
//! The build environment has no crates.io access, so this crate
//! re-implements the subset of the `proptest` API the workspace's
//! property tests use: the [`strategy::Strategy`] trait with `prop_map` /
//! `prop_filter` / `boxed`, range and tuple and regex-string strategies,
//! [`collection::vec`], `any::<T>()`, weighted `prop_oneof!`, and the
//! `proptest!` test macro with `#![proptest_config(...)]`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the assertion message instead of a minimized counterexample.
//! * **Deterministic.** Each test's RNG is seeded from the test name, so
//!   failures reproduce exactly — the same invariant the rest of this
//!   workspace builds on (no ambient entropy).
//! * `prop_assert!` and friends panic rather than returning `Err`, which
//!   is equivalent under this runner.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Common imports for property tests.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Choose between strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( (($weight) as u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $( (1u32, $crate::strategy::Strategy::boxed($strat)) ),+
        ])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `Config::cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            let mut __rng = $crate::test_runner::rng_for_test(stringify!($name));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                // Bodies may `return Ok(())` to discard a case, matching
                // real proptest's Result-returning test closures.
                #[allow(clippy::redundant_closure_call)] // gives `$body` a `return` target
                let __outcome: ::core::result::Result<(), ::std::string::String> =
                    (|| {
                        { $body }
                        ::core::result::Result::Ok(())
                    })();
                if let ::core::result::Result::Err(__msg) = __outcome {
                    ::core::panic!("property {} failed: {}", stringify!($name), __msg);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_generation() {
        let s = crate::collection::vec(0i64..100, 1..10);
        let mut r1 = crate::test_runner::rng_for_test("x");
        let mut r2 = crate::test_runner::rng_for_test("x");
        assert_eq!(s.new_value(&mut r1), s.new_value(&mut r2));
    }

    #[test]
    fn regex_strings_match_class_and_len() {
        let mut rng = crate::test_runner::rng_for_test("regex");
        for _ in 0..200 {
            let s = "[a-c]{2,5}".new_value(&mut rng);
            assert!(s.len() >= 2 && s.len() <= 5, "{s:?}");
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn oneof_weights_and_filter() {
        let mut rng = crate::test_runner::rng_for_test("oneof");
        let s = prop_oneof![3 => (0i64..10).boxed(), 1 => Just(99i64).boxed()]
            .prop_filter("even", |v| *v % 2 == 0);
        for _ in 0..100 {
            let v = s.new_value(&mut rng);
            assert!(v % 2 == 0);
            assert!((0..10).contains(&v) || v == 99);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: tuples, maps, any::<bool>.
        #[test]
        fn macro_end_to_end(
            pair in (0usize..5, "[x-z]{1,2}").prop_map(|(n, s)| (n, s)),
            flag in any::<bool>(),
            v in crate::collection::vec(0.0f64..1.0, 3..=3),
        ) {
            prop_assert!(pair.0 < 5);
            prop_assert!(!pair.1.is_empty() && pair.1.len() <= 2);
            prop_assert_eq!(v.len(), 3);
            prop_assert_ne!(flag as usize, 2);
        }
    }
}
