//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no crates.io access, and nothing in this
//! workspace serializes through a real serde backend (there is no
//! `serde_json`/`bincode` here — the derives on config and plan types
//! exist so downstream users *could* wire a backend in). This stub keeps
//! those derives compiling: the traits are markers blanket-implemented
//! for every type, and the derive macros expand to nothing.

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

pub use serde_derive::{Deserialize, Serialize};
