//! Offline vendored stand-in for `parking_lot`, backed by `std::sync`.
//!
//! Matches the `parking_lot` API shape the workspace uses: infallible
//! `lock()` (poisoning is swallowed — a poisoned mutex just hands back the
//! inner data, which is `parking_lot`'s behaviour since it has no
//! poisoning at all) and `into_inner()` without a `Result`.

use std::sync::PoisonError;

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex with `parking_lot`'s panic-free locking API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }
}
