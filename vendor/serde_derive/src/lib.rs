//! Offline vendored no-op implementations of serde's derive macros.
//!
//! The sibling `serde` stub blanket-implements its marker traits for all
//! types, so the derives here only need to exist (and accept the
//! `#[serde(...)]` helper attribute); they expand to nothing.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
