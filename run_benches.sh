#!/usr/bin/env bash
# Regenerate every paper table/figure (see DESIGN.md experiment index).
# Usage: ./run_benches.sh [scale] — scale multiplies each dataset's default size.
set -u
SCALE="${1:-1.0}"
RUNS="${2:-3}"
BINS=(table1 table2 table4 table5 fig9 fig10 sweep_physical sweep_ruleseq sweep_cluster sweep_sample sweep_iters sweep_workflow sweep_sampler kbb_recall fv_throughput forest_throughput ingest)
for bin in "${BINS[@]}"; do
  echo
  echo "##### $bin (scale $SCALE) #####"
  cargo run --release -q -p falcon-bench --bin "$bin" -- --scale "$SCALE" --runs "$RUNS" || echo "$bin FAILED"
done
echo
echo "##### table3 (per-run) #####"
cargo run --release -q -p falcon-bench --bin table2 -- --scale "$SCALE" --runs "$RUNS" --per-run || echo "table3 FAILED"
