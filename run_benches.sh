#!/usr/bin/env bash
# Regenerate every paper table/figure (see DESIGN.md experiment index).
# Usage: ./run_benches.sh [scale] — scale multiplies each dataset's default size.
set -u
SCALE="${1:-1.0}"
RUNS="${2:-3}"
# blocking_bench emits BENCH_blocking.json:
#   candidate_probe_reduction — probes reaching the exact filter + reducer
#     pipeline, exact path / pre-filtered path (the popcount gate's prune),
#   wall_speedup              — mean end-to-end blocking wall time,
#     exact path / pre-filtered path,
#   final_sets_identical      — asserted in-bench: both paths produce the
#     same post-rule-evaluation candidate pairs,
#   planned_modes             — per-conjunct probe modes the cost planner
#     chose ("off" / "gate" / "dense").
# It runs at 10x the standard bench scale internally (--scale multiplies).
# serve_bench emits BENCH_serve.json:
#   throughput_speedup        — aggregate throughput of the shared-pool
#     multi-tenant run over replaying the same jobs serially,
#   shared/serial             — makespan, utilization, p50/p99 job latency
#     for each mode,
#   tenants_bit_identical_to_solo — asserted in-bench: every tenant's
#     match set equals a solo (ungated) run of the same job.
# serve_chaos emits BENCH_chaos.json:
#   cells                     — one entry per {policy x kill-round x
#     crowd-loss x pool-shrink} chaos cell: resume_identical and
#     zero_reasked are asserted in-bench (kill + resume reproduces the
#     uninterrupted run byte-for-byte without re-asking the crowd),
#   worst_recovery_overhead   — max (kill + resume) / reference wall time,
#   degraded_half_pool_slowdown — makespan ratio after losing half the
#     node pool mid-run (crowd waits mask most of the loss).
BINS=(table1 table2 table4 table5 fig9 fig10 sweep_physical sweep_ruleseq sweep_cluster sweep_sample sweep_iters sweep_workflow sweep_sampler kbb_recall fv_throughput forest_throughput ingest blocking_bench serve_bench serve_chaos)
for bin in "${BINS[@]}"; do
  echo
  echo "##### $bin (scale $SCALE) #####"
  cargo run --release -q -p falcon-bench --bin "$bin" -- --scale "$SCALE" --runs "$RUNS" || echo "$bin FAILED"
done
echo
echo "##### table3 (per-run) #####"
cargo run --release -q -p falcon-bench --bin table2 -- --scale "$SCALE" --runs "$RUNS" --per-run || echo "table3 FAILED"
