//! Deduplicating a song catalog (the paper's Songs workload, Section 11):
//! a single table matched against itself, where the same song appears on
//! multiple albums but remixes/live versions must NOT match.
//!
//! Demonstrates: equal-size tables, duplicate clusters (more matches than
//! tuples), and blocking-recall measurement.
//!
//! ```sh
//! cargo run --release -p falcon --example songs_dedup -- [scale]
//! ```

use falcon::prelude::*;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.003);
    let data = falcon::datagen::songs::generate(scale, 11);
    println!(
        "Songs @ {:.1}%: {} x {} tuples, {} matching pairs ({:.2} per tuple)",
        scale * 100.0,
        data.a.len(),
        data.b.len(),
        data.truth.len(),
        data.truth.len() as f64 / data.a.len() as f64
    );

    let truth = GroundTruth::new(data.truth.iter().copied());
    let crowd = RandomWorkerCrowd::new(truth, 0.05, 3);

    let config = FalconConfig {
        sample_size: 20_000,
        ..FalconConfig::default()
    };
    let report = Falcon::new(config).run(&data.a, &data.b, crowd);

    let q = report.quality(&data.truth);
    println!("\n== Songs result ==");
    println!(
        "P {:.1}%  R {:.1}%  F1 {:.1}%   (paper full-scale: P 96.0 R 99.3 F1 97.6)",
        q.precision * 100.0,
        q.recall * 100.0,
        q.f1 * 100.0
    );
    println!(
        "candidates {} of {} possible pairs ({:.3}%)",
        report.candidate_size.unwrap_or(0),
        data.a.len() * data.b.len(),
        100.0 * report.candidate_size.unwrap_or(0) as f64 / (data.a.len() * data.b.len()) as f64
    );
    println!(
        "crowd ${:.2} over {} questions; total time {:?}",
        report.ledger.cost,
        report.ledger.questions,
        report.total_time()
    );

    // Show the learned blocking rules in feature terms.
    let lib = falcon::core::features::generate_features(&data.a, &data.b);
    println!("\nSelected blocking-rule sequence:");
    for rule in &report.rule_sequence.rules {
        println!("  {}", rule.display_with(&lib.blocking));
    }
}
