//! Composing Falcon's operators by hand instead of using the driver —
//! the "RDBMS approach" of Section 4: operators are reusable pieces you
//! can rearrange into custom EM plans.
//!
//! This example builds the Figure 3.a plan step by step, printing what
//! each operator produced, and finishes by comparing the six physical
//! implementations of `apply_blocking_rules` on the same rule sequence
//! (the Section 11.2 experiment in miniature).
//!
//! ```sh
//! cargo run --release -p falcon --example custom_plan
//! ```

use falcon::core::features::generate_features;
use falcon::core::indexing::{BuiltIndexes, ConjunctSpecs};
use falcon::core::ops::al_matcher::{al_matcher, AlConfig};
use falcon::core::ops::eval_rules::{eval_rules, EvalConfig};
use falcon::core::ops::gen_fvs::gen_fvs;
use falcon::core::ops::get_blocking_rules::get_blocking_rules;
use falcon::core::ops::sample_pairs::sample_pairs;
use falcon::core::ops::select_opt_seq::{select_opt_seq, SeqConfig};
use falcon::core::physical::{self, PhysicalOp};
use falcon::core::timeline::Timeline;
use falcon::prelude::*;

fn main() {
    let data = falcon::datagen::citations::generate(0.002, 21);
    let cluster = Cluster::new(ClusterConfig::default());
    let truth = GroundTruth::new(data.truth.iter().copied());
    let mut session = CrowdSession::new(OracleCrowd::new(truth));
    let mut timeline = Timeline::new();

    // Operator 0 (implicit): automatic feature generation, Figure 5.
    let lib = generate_features(&data.a, &data.b);
    println!(
        "features: {} blocking / {} matching (paper's Citations: 22/30)",
        lib.blocking.len(),
        lib.matching.len()
    );

    // sample_pairs.
    let sample = sample_pairs(&cluster, &data.a, &data.b, 10_000, 50, 1).expect("sample_pairs");
    println!("sample_pairs: |S| = {}", sample.pairs.len());

    // gen_fvs over the sample, blocking features only.
    let s_fvs = gen_fvs(&cluster, &data.a, &data.b, &sample.pairs, &lib.blocking).expect("gen_fvs");

    // al_matcher: crowdsourced active learning of the blocking forest.
    let higher: Vec<bool> = lib
        .blocking
        .features
        .iter()
        .map(|f| f.sim.higher_is_similar())
        .collect();
    let al = al_matcher(
        &cluster,
        &mut session,
        &mut timeline,
        "al_matcher",
        &s_fvs.fvs,
        &higher,
        &AlConfig::default(),
    )
    .expect("al_matcher");
    println!(
        "al_matcher: {} crowd iterations, converged = {}",
        al.iterations, al.converged
    );

    // get_blocking_rules: forest paths -> ranked candidate rules.
    let ranked = get_blocking_rules(&al.forest, &s_fvs.fvs, 20, &higher);
    println!("get_blocking_rules: {} candidates", ranked.len());

    // eval_rules: crowd evaluates precision per rule.
    let eval = eval_rules(
        &mut session,
        &mut timeline,
        &ranked,
        &s_fvs.fvs,
        &EvalConfig::default(),
    );
    println!("eval_rules: {} retained", eval.retained.len());

    // select_opt_seq.
    let seq = select_opt_seq(&ranked, &eval.retained, &s_fvs.fvs, &SeqConfig::default());
    println!(
        "select_opt_seq: {} rules, est. selectivity {:.4}, precision >= {:.3}",
        seq.seq.len(),
        seq.selectivity,
        seq.precision
    );
    for r in &seq.seq.rules {
        println!("  {r}");
    }

    // apply_blocking_rules, all six physical operators.
    let conjuncts = ConjunctSpecs::derive(&seq.seq, &lib.blocking);
    let mut built = BuiltIndexes::new();
    for spec in conjuncts.all_specs() {
        built
            .build_spec(&cluster, &data.a, &spec)
            .expect("build_spec");
    }
    println!("\nphysical operator comparison (identical outputs expected):");
    for op in [
        PhysicalOp::ApplyAll,
        PhysicalOp::ApplyGreedy,
        PhysicalOp::ApplyConjunct,
        PhysicalOp::ApplyPredicate,
        PhysicalOp::MapSide,
        PhysicalOp::ReduceSplit,
    ] {
        match physical::execute(
            op,
            &cluster,
            &data.a,
            &data.b,
            &lib.blocking,
            &seq.seq,
            &conjuncts,
            &built,
            &seq.rule_selectivities,
            5_000_000, // pair budget: enumeration baselines may exceed it
        ) {
            Ok(out) => println!(
                "  {:<16} {:>8} candidates, simulated {:?}",
                out.op.name(),
                out.candidates.len(),
                out.duration
            ),
            Err(e) => println!("  {:<16} KILLED: {e}", op.name()),
        }
    }
    println!(
        "\ncrowd so far: {} questions, ${:.2}",
        session.ledger().questions,
        session.ledger().cost
    );
}
