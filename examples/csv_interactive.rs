//! Hands-off EM over your own CSV files, with *you* as the crowd — the
//! "users can label the tuple pairs themselves" mode of the paper's
//! Example 1.
//!
//! ```sh
//! cargo run --release -p falcon --example csv_interactive -- a.csv b.csv
//! ```
//!
//! With no arguments, a small demo dataset is written to `/tmp` and used,
//! and the answers are piped from the ground truth so the example stays
//! non-blocking in CI; pass your own CSVs for a real interactive session.

use falcon::crowd::interactive::InteractiveCrowd;
use falcon::prelude::*;
use falcon::table::csv;
use std::fs::File;
use std::io::{BufReader, Write};

fn load(path: &str) -> Table {
    let f = File::open(path).unwrap_or_else(|e| panic!("open {path}: {e}"));
    csv::read_table(path, BufReader::new(f)).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (a, b, demo_truth) = if args.len() >= 2 {
        (load(&args[0]), load(&args[1]), None)
    } else {
        // Demo mode: generate a small products dataset, round-trip it
        // through CSV, and auto-answer from ground truth.
        let d = falcon::datagen::products::generate(0.01, 99);
        for (t, path) in [
            (&d.a, "/tmp/falcon_demo_a.csv"),
            (&d.b, "/tmp/falcon_demo_b.csv"),
        ] {
            let mut f = File::create(path).expect("write demo csv");
            csv::write_table(t, &mut f).expect("serialize");
            f.flush().unwrap();
        }
        println!("demo CSVs written to /tmp/falcon_demo_a.csv and /tmp/falcon_demo_b.csv");
        let a = load("/tmp/falcon_demo_a.csv");
        let b = load("/tmp/falcon_demo_b.csv");
        (a, b, Some(d.truth))
    };
    println!(
        "matching {} ({} rows) x {} ({} rows)",
        a.name(),
        a.len(),
        b.name(),
        b.len()
    );

    let config = FalconConfig {
        sample_size: 2_000,
        sample_fanout: 10,
        al: falcon::core::ops::al_matcher::AlConfig {
            max_iterations: 8, // keep a human session short
            ..Default::default()
        },
        ..FalconConfig::default()
    };

    let report = if let Some(truth) = demo_truth {
        // Demo mode answers from ground truth (the question order is data
        // dependent, so a scripted stdin can't be precomputed); a real
        // session uses the InteractiveCrowd branch below.
        let oracle = OracleCrowd::new(GroundTruth::new(truth.iter().copied()));
        let report = Falcon::new(config).run(&a, &b, oracle);
        let q = report.quality(&truth);
        println!(
            "demo result: P {:.1}% R {:.1}% F1 {:.1}%",
            q.precision * 100.0,
            q.recall * 100.0,
            q.f1 * 100.0
        );
        report
    } else {
        let crowd = InteractiveCrowd::new(
            a.clone(),
            b.clone(),
            BufReader::new(std::io::stdin()),
            std::io::stdout(),
        );
        Falcon::new(config).run(&a, &b, crowd)
    };

    println!("\n{} matches found:", report.matches.len());
    for (aid, bid) in report.matches.iter().take(25) {
        let at = a.get(*aid).unwrap();
        let bt = b.get(*bid).unwrap();
        println!(
            "  A#{aid} {:?}  <->  B#{bid} {:?}",
            at.value(0).render(),
            bt.value(0).render()
        );
    }
    if report.matches.len() > 25 {
        println!("  ... and {} more", report.matches.len() - 25);
    }
}
