//! Quickstart: match two product catalogs end to end with a simulated
//! crowd, print quality, cost and the time breakdown.
//!
//! ```sh
//! cargo run --release -p falcon --example quickstart
//! ```

use falcon::prelude::*;

fn main() {
    // 1. Get two tables to match. Here: the synthetic Products dataset at
    //    5% of the paper's scale (~128 × ~1.1K tuples). In a real
    //    deployment you would load CSVs via `falcon::table::csv`.
    let data = falcon::datagen::products::generate(0.05, 42);
    println!(
        "Matching {} x {} tuples ({} true matches)",
        data.a.len(),
        data.b.len(),
        data.truth.len()
    );

    // 2. Pick a crowd. `RandomWorkerCrowd` is the paper's simulation
    //    model: every answer is wrong with the given probability, each
    //    10-question HIT round takes 1.5 virtual minutes, answers cost 2
    //    cents. Swap in your own `Crowd` impl to use real people.
    let truth = GroundTruth::new(data.truth.iter().copied());
    let crowd = RandomWorkerCrowd::new(truth, 0.05, 7);

    // 3. Configure. Defaults mirror the paper; we scale the sample to the
    //    input size.
    let config = FalconConfig {
        sample_size: 10_000,
        cluster: ClusterConfig::default(), // simulated 10-node cluster
        ..FalconConfig::default()
    };

    // 4. Run hands-off EM: Falcon samples pairs, crowd-learns blocking
    //    rules, evaluates them with the crowd, blocks A x B with
    //    index-based filters, then crowd-learns and applies a matcher.
    let report = Falcon::new(config).run(&data.a, &data.b, crowd);

    // 5. Inspect results.
    let q = report.quality(&data.truth);
    println!("\n== Result ==");
    println!("plan            : {:?}", report.plan);
    println!("physical op     : {:?}", report.physical);
    println!(
        "blocking        : {} rules extracted, {} retained, sequence of {}",
        report.rules_extracted,
        report.rules_retained,
        report.rule_sequence.len()
    );
    println!("candidate pairs : {:?}", report.candidate_size);
    println!(
        "quality         : P {:.1}%  R {:.1}%  F1 {:.1}%",
        q.precision * 100.0,
        q.recall * 100.0,
        q.f1 * 100.0
    );
    println!(
        "crowd           : {} questions, {} answers, ${:.2}",
        report.ledger.questions, report.ledger.answers, report.ledger.cost
    );
    println!(
        "time            : machine {:?}  crowd {:?}  total {:?} (masked away {:?})",
        report.machine_time(),
        report.crowd_time(),
        report.total_time(),
        report.machine_time() - report.unmasked_machine_time(),
    );
    println!("\nPer-operator times:");
    for (op, dur) in report.op_times() {
        println!("  {op:<18} {dur:?}");
    }
}
