//! The in-house deployment scenario of Section 11.1: matching drug
//! descriptions with a "crowd" of one domain expert (sensitive data, no
//! public crowdsourcing allowed).
//!
//! With an expert crowd, labeling latency collapses (~12 s per round
//! instead of 1.5 min), so *machine* time becomes a large share of total
//! time — the regime where Falcon's masking optimizations matter most.
//! The example runs the same workload with optimizations off and on and
//! reports the reduction (the paper observed 49%).
//!
//! ```sh
//! cargo run --release -p falcon --example drug_matching
//! ```

use falcon::prelude::*;

/// The dedicated drugs generator: two hospital systems' medication
/// tables with cross-system format drift (full salt names vs
/// abbreviations, spaced vs fused doses).
fn drug_tables(scale: f64) -> EmDataset {
    falcon::datagen::drugs::generate(scale, 77)
}

fn run(opt: OptFlags, data: &EmDataset) -> falcon::core::driver::RunReport {
    let truth = GroundTruth::new(data.truth.iter().copied());
    let expert = ExpertCrowd::new(truth, 5);
    let config = FalconConfig {
        sample_size: 15_000,
        opt,
        ..FalconConfig::default()
    };
    Falcon::new(config).run(&data.a, &data.b, expert)
}

fn main() {
    let data = drug_tables(0.008);
    println!(
        "Drug matching: {} x {} descriptions, {} true matches, expert crowd of 1",
        data.a.len(),
        data.b.len(),
        data.truth.len()
    );

    let unopt = run(OptFlags::none(), &data);
    let opt = run(OptFlags::default(), &data);

    let uq = unopt.quality(&data.truth);
    let oq = opt.quality(&data.truth);
    println!("\n== Unoptimized ==");
    println!(
        "P {:.1}% R {:.1}% F1 {:.1}% | machine {:?} crowd {:?} total {:?}",
        uq.precision * 100.0,
        uq.recall * 100.0,
        uq.f1 * 100.0,
        unopt.machine_time(),
        unopt.crowd_time(),
        unopt.total_time()
    );
    println!("== Optimized (masking on) ==");
    println!(
        "P {:.1}% R {:.1}% F1 {:.1}% | machine {:?} (unmasked {:?}) crowd {:?} total {:?}",
        oq.precision * 100.0,
        oq.recall * 100.0,
        oq.f1 * 100.0,
        opt.machine_time(),
        opt.unmasked_machine_time(),
        opt.crowd_time(),
        opt.total_time()
    );

    let u = unopt.unmasked_machine_time().as_secs_f64();
    let o = opt.unmasked_machine_time().as_secs_f64();
    if u > 0.0 {
        println!(
            "\nMasking reduced critical-path machine time by {:.0}% (paper: 49% on its drug deployment)",
            (1.0 - o / u) * 100.0
        );
    }
    println!(
        "Expert labeled {} pairs at $0 crowd cost.",
        opt.ledger.questions
    );
}
