//! Masking-optimization integration tests (Section 10.2 / Table 5):
//! optimizations must reduce unmasked machine time without changing the
//! output, and each ablation must stay within the envelope of the fully
//! optimized and fully unoptimized runs.

use falcon::prelude::*;

fn run(data: &EmDataset, opt: OptFlags) -> falcon::core::driver::RunReport {
    let truth = GroundTruth::new(data.truth.iter().copied());
    let cfg = FalconConfig {
        cluster: ClusterConfig::small(4),
        sample_size: 6_000,
        sample_fanout: 30,
        force_plan: Some(PlanKind::BlockAndMatch),
        opt,
        ..FalconConfig::default()
    };
    Falcon::new(cfg).run(&data.a, &data.b, OracleCrowd::new(truth))
}

#[test]
fn full_masking_reduces_unmasked_machine_time() {
    let data = falcon::datagen::citations::generate(0.002, 61);
    let unopt = run(&data, OptFlags::none());
    let opt = run(&data, OptFlags::default());
    // Machine time includes real measured compute, so allow the same
    // timing-noise margin as the envelope test below.
    let o = opt.unmasked_machine_time().as_secs_f64();
    let u = unopt.unmasked_machine_time().as_secs_f64();
    assert!(o <= u * 1.02 + 0.2, "opt {o}s vs unopt {u}s");
    // Total machine work performed doesn't shrink — it moves under crowd
    // time.
    assert!(
        opt.machine_time() + std::time::Duration::from_millis(1) >= opt.unmasked_machine_time()
    );
}

#[test]
fn each_ablation_within_envelope() {
    let data = falcon::datagen::songs::generate(0.0015, 62);
    let full = run(&data, OptFlags::default());
    let none = run(&data, OptFlags::none());
    for flags in [
        OptFlags {
            prebuild_indexes: false,
            ..OptFlags::default()
        },
        OptFlags {
            speculative_execution: false,
            ..OptFlags::default()
        },
        OptFlags {
            mask_pair_selection: false,
            ..OptFlags::default()
        },
    ] {
        let ablated = run(&data, flags);
        // An ablated run can't beat the fully optimized one by more than
        // timing noise, and shouldn't be (much) worse than no optimization.
        let o = full.unmasked_machine_time().as_secs_f64();
        let a = ablated.unmasked_machine_time().as_secs_f64();
        let u = none.unmasked_machine_time().as_secs_f64();
        assert!(a <= u * 1.5 + 0.2, "{flags:?}: ablated {a}s vs unopt {u}s");
        assert!(a + 0.2 >= o * 0.5, "{flags:?}: ablated {a}s vs full {o}s");
    }
}

#[test]
fn index_prebuild_fully_masks_under_long_crowd_rounds() {
    // MTurk-like latency means hours of masking capacity; index building
    // must vanish from the critical path.
    let data = falcon::datagen::products::generate(0.02, 63);
    let report = run(&data, OptFlags::default());
    let ops = report.op_times();
    if let Some(d) = ops.get("index_build") {
        assert!(
            d.as_millis() < 50,
            "index building should be masked, got {d:?}"
        );
    }
}

#[test]
fn speculative_execution_masks_apply_matcher_on_convergence() {
    let data = falcon::datagen::songs::generate(0.001, 64);
    let report = run(&data, OptFlags::default());
    // The matching-stage AL converges easily on songs; apply_matcher
    // should then be recorded as masked (zero critical-path time).
    let ops = report.op_times();
    if let Some(d) = ops.get("apply_matcher") {
        assert!(d.as_millis() < 50, "apply_matcher unmasked: {d:?}");
    }
}
