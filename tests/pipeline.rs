//! Cross-crate integration tests: the full hands-off pipeline on all
//! three synthetic datasets, exercised through the facade crate.

use falcon::prelude::*;

fn config() -> FalconConfig {
    FalconConfig {
        cluster: ClusterConfig::small(4),
        sample_size: 6_000,
        sample_fanout: 40,
        force_plan: Some(PlanKind::BlockAndMatch),
        ..FalconConfig::default()
    }
}

fn run(data: &EmDataset, error: f64, seed: u64) -> (falcon::core::driver::RunReport, EmQuality) {
    let truth = GroundTruth::new(data.truth.iter().copied());
    let crowd = RandomWorkerCrowd::new(truth, error, seed);
    let report = Falcon::new(config()).run(&data.a, &data.b, crowd);
    let q = report.quality(&data.truth);
    (report, q)
}

#[test]
fn songs_pipeline_high_f1() {
    let data = falcon::datagen::songs::generate(0.0015, 31);
    let (report, q) = run(&data, 0.05, 1);
    assert!(q.f1 > 0.75, "songs F1 = {:.3}", q.f1);
    assert!(report.candidate_size.unwrap() < data.a.len() * data.b.len() / 4);
}

#[test]
fn citations_pipeline_high_f1() {
    let data = falcon::datagen::citations::generate(0.001, 32);
    let (report, q) = run(&data, 0.05, 2);
    assert!(q.f1 > 0.7, "citations F1 = {:.3}", q.f1);
    assert!(report.rules_retained > 0 || !report.rule_sequence.is_empty());
}

#[test]
fn products_pipeline_reasonable_f1() {
    // Products is the paper's hardest dataset (F1 ≈ 0.82 at full scale).
    let data = falcon::datagen::products::generate(0.03, 33);
    let (_, q) = run(&data, 0.05, 3);
    assert!(q.f1 > 0.6, "products F1 = {:.3}", q.f1);
}

#[test]
fn deterministic_given_seeds() {
    let data = falcon::datagen::songs::generate(0.001, 34);
    let (r1, _) = run(&data, 0.05, 9);
    let (r2, _) = run(&data, 0.05, 9);
    assert_eq!(r1.matches, r2.matches);
    assert_eq!(r1.ledger.questions, r2.ledger.questions);
}

#[test]
fn oracle_beats_noisy_crowd() {
    let data = falcon::datagen::songs::generate(0.0015, 35);
    let truth = GroundTruth::new(data.truth.iter().copied());
    let oracle_report =
        Falcon::new(config()).run(&data.a, &data.b, OracleCrowd::new(truth.clone()));
    let noisy_report =
        Falcon::new(config()).run(&data.a, &data.b, RandomWorkerCrowd::new(truth, 0.2, 5));
    let qo = oracle_report.quality(&data.truth);
    let qn = noisy_report.quality(&data.truth);
    assert!(
        qo.f1 >= qn.f1 - 0.05,
        "oracle {:.3} vs noisy {:.3}",
        qo.f1,
        qn.f1
    );
}

#[test]
fn ledger_consistency() {
    let data = falcon::datagen::products::generate(0.01, 36);
    let (report, _) = run(&data, 0.0, 7);
    let l = report.ledger;
    assert!(l.answers >= l.questions * 3, "majority needs >= 3 answers");
    assert!(l.hits >= l.rounds);
    assert!((l.cost - l.answers as f64 * 0.02).abs() < 1e-9);
    assert_eq!(report.crowd_time(), l.crowd_time);
}
