//! Blocking-quality integration tests: rule-based blocking (RBB) must
//! beat key-based blocking (KBB) on dirty data — the Section 3.2 argument
//! (paper: KBB recall 72.6 / 98.6 / 38.8 vs RBB 98.09 / 99.99 / 99.67).

use falcon::core::kbb::best_kbb;
use falcon::core::metrics::blocking_recall;
use falcon::prelude::*;
use std::collections::HashSet;

/// Run just the blocking stage via the driver and recover the candidate
/// recall by re-running the selected sequence exhaustively.
fn rbb_recall(data: &EmDataset, seed: u64) -> (f64, usize) {
    let truth = GroundTruth::new(data.truth.iter().copied());
    let cfg = FalconConfig {
        cluster: ClusterConfig::small(4),
        sample_size: 6_000,
        sample_fanout: 40,
        force_plan: Some(PlanKind::BlockAndMatch),
        seed,
        ..FalconConfig::default()
    };
    let report = Falcon::new(cfg).run(&data.a, &data.b, OracleCrowd::new(truth));
    let lib = falcon::core::features::generate_features(&data.a, &data.b);
    let out = falcon::core::corleone::corleone_blocking(
        &data.a,
        &data.b,
        &lib.blocking,
        &report.rule_sequence,
        1 << 40,
    )
    .expect("small enough to enumerate");
    (
        blocking_recall(&out.candidates, &data.truth),
        out.candidates.len(),
    )
}

#[test]
fn rbb_beats_kbb_on_citations() {
    // Citations is where KBB collapses in the paper (38.8% recall).
    let data = falcon::datagen::citations::generate(0.001, 51);
    let kbb = best_kbb(&data.a, &data.b, &data.truth);
    let (rbb, _) = rbb_recall(&data, 1);
    assert!(
        rbb > kbb.recall + 0.1,
        "RBB {rbb:.3} should clearly beat KBB {:.3} (key {:?})",
        kbb.recall,
        kbb.key
    );
    assert!(kbb.recall < 0.75, "KBB should struggle: {:.3}", kbb.recall);
}

#[test]
fn rbb_high_recall_on_songs() {
    let data = falcon::datagen::songs::generate(0.0015, 52);
    let (rbb, cands) = rbb_recall(&data, 2);
    // Paper: 99.99% with a 1M-pair sample at full scale. At this reduced
    // scale the sample holds only a few dozen matches, so rule quality is
    // noisier; it must still stay high and beat the best KBB key.
    // (No RBB-vs-KBB assertion here: Songs is the one dataset where the
    // paper itself reports KBB doing well — 98.6% vs RBB's 99.99%.)
    assert!(rbb > 0.8, "songs RBB recall {rbb:.3}");
    // And it actually blocks.
    assert!(cands < data.a.len() * data.b.len() / 4);
}

#[test]
fn kbb_candidates_subset_of_exact_agreement() {
    let data = falcon::datagen::products::generate(0.02, 53);
    let kbb = best_kbb(&data.a, &data.b, &data.truth);
    // Sanity: the KBB search returns a shared attribute and bounded recall.
    assert!(!kbb.key.is_empty());
    assert!((0.0..=1.0).contains(&kbb.recall));
    // The returned key's candidates truly agree on the key.
    let refs: Vec<&str> = kbb.key.iter().map(String::as_str).collect();
    let cands = falcon::core::kbb::kbb_candidates(&data.a, &data.b, &refs);
    let set: HashSet<_> = cands.iter().collect();
    assert_eq!(set.len(), cands.len(), "no duplicate candidates");
    for (aid, bid) in cands.iter().take(200) {
        for k in &refs {
            let av = data.a.value_of(*aid, k).unwrap().render().to_lowercase();
            let bv = data.b.value_of(*bid, k).unwrap().render().to_lowercase();
            assert_eq!(av, bv);
        }
    }
}
